"""Tests for K-means clustering."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster import KMeansError, elbow_inertias, kmeans, lloyd_iteration


def blob_data(seed=0):
    rng = np.random.default_rng(seed)
    centers = np.array([[0.0, 0.0], [10.0, 10.0], [0.0, 10.0]])
    points = np.vstack(
        [center + 0.3 * rng.standard_normal((20, 2)) for center in centers]
    )
    return points, centers


class TestBasics:
    def test_k1_centroid_is_mean(self):
        points = np.array([[0.0, 0.0], [2.0, 0.0], [0.0, 2.0], [2.0, 2.0]])
        result = kmeans(points, 1, seed=0)
        assert result.centroids[0] == pytest.approx([1.0, 1.0])

    def test_k_equals_n_zero_inertia(self):
        points, _ = blob_data()
        result = kmeans(points[:5], 5, seed=0)
        assert result.inertia == pytest.approx(0.0, abs=1e-12)

    def test_recovers_separated_blobs(self):
        points, centers = blob_data()
        result = kmeans(points, 3, seed=0)
        found = sorted(result.centroids.tolist())
        expected = sorted(centers.tolist())
        for f, e in zip(found, expected):
            assert f == pytest.approx(e, abs=0.5)

    def test_assignments_shape_and_range(self):
        points, _ = blob_data()
        result = kmeans(points, 3, seed=0)
        assert result.assignments.shape == (60,)
        assert set(result.assignments.tolist()) == {0, 1, 2}

    def test_members(self):
        points, _ = blob_data()
        result = kmeans(points, 3, seed=0)
        total = sum(result.members(j).size for j in range(3))
        assert total == 60

    def test_deterministic_with_seed(self):
        points, _ = blob_data()
        a = kmeans(points, 3, seed=42)
        b = kmeans(points, 3, seed=42)
        assert (a.assignments == b.assignments).all()
        assert a.inertia == b.inertia

    def test_random_init_supported(self):
        points, _ = blob_data()
        result = kmeans(points, 3, seed=0, init="random")
        assert result.k == 3


class TestInertia:
    def test_inertia_non_increasing_in_k(self):
        points, _ = blob_data()
        inertias = elbow_inertias(points, (1, 2, 3, 4, 5), seed=1, restarts=5)
        values = list(inertias.values())
        assert all(a >= b - 1e-9 for a, b in zip(values, values[1:]))

    def test_inertia_matches_definition(self):
        points, _ = blob_data()
        result = kmeans(points, 3, seed=0)
        manual = sum(
            ((points[i] - result.centroids[result.assignments[i]]) ** 2).sum()
            for i in range(len(points))
        )
        assert result.inertia == pytest.approx(manual)


class TestLloyd:
    def test_converges_flag(self):
        points, centers = blob_data()
        result = lloyd_iteration(points, centers.copy(), max_iterations=50)
        assert result.converged

    def test_single_iteration_cap(self):
        points, _ = blob_data()
        start = points[:3].copy()
        result = lloyd_iteration(points, start, max_iterations=1)
        assert result.iterations == 1


class TestErrors:
    def test_k_zero(self):
        with pytest.raises(KMeansError):
            kmeans(np.zeros((5, 2)), 0)

    def test_k_exceeds_n(self):
        with pytest.raises(KMeansError):
            kmeans(np.zeros((3, 2)), 4)

    def test_one_dimensional_points(self):
        with pytest.raises(KMeansError):
            kmeans(np.zeros(5), 2)

    def test_bad_init(self):
        with pytest.raises(KMeansError):
            kmeans(np.zeros((5, 2)), 2, init="spectral")

    def test_bad_restarts(self):
        with pytest.raises(KMeansError):
            kmeans(np.zeros((5, 2)), 2, restarts=0)


class TestProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.tuples(st.floats(-100, 100), st.floats(-100, 100)),
            min_size=4,
            max_size=40,
        ),
        st.integers(1, 4),
    )
    def test_every_point_assigned_to_nearest_centroid(self, raw_points, k):
        points = np.array(raw_points)
        k = min(k, len(points))
        result = kmeans(points, k, seed=0, restarts=3)
        distances = ((points[:, None, :] - result.centroids[None]) ** 2).sum(axis=2)
        best = distances.min(axis=1)
        chosen = distances[np.arange(len(points)), result.assignments]
        assert chosen == pytest.approx(best)
