"""Tests for workload profiles and the nine-benchmark suite."""

import dataclasses

import pytest
from hypothesis import given, strategies as st

from repro.workloads import (
    BENCHMARK_NAMES,
    SUITE,
    ProfileError,
    get_profile,
    suite_profiles,
)
from repro.workloads.profile import reuse_survival, validate_strata


class TestSuite:
    def test_nine_benchmarks(self):
        assert len(SUITE) == 9

    def test_paper_names(self):
        assert set(BENCHMARK_NAMES) == {
            "ammp", "applu", "equake", "gcc", "gzip", "jbb", "mcf", "mesa", "twolf",
        }

    def test_mix_sums_to_one(self):
        for profile in SUITE.values():
            assert sum(profile.mix.values()) == pytest.approx(1.0)

    def test_get_profile_unknown_lists_names(self):
        with pytest.raises(KeyError, match="ammp"):
            get_profile("bogus")

    def test_suite_profiles_default_order(self):
        assert [p.name for p in suite_profiles()] == list(BENCHMARK_NAMES)

    def test_suite_profiles_selection(self):
        assert [p.name for p in suite_profiles(["mcf", "gzip"])] == ["mcf", "gzip"]

    def test_mcf_is_most_memory_bound(self):
        # mcf's survival at the largest L2 should dominate the suite's
        # integer benchmarks: it misses even with 4MB.
        l2_blocks = 4 * 1024 * 8
        mcf = get_profile("mcf").data_miss_rate(l2_blocks)
        gzip = get_profile("gzip").data_miss_rate(l2_blocks)
        assert mcf > 0.1
        assert gzip == pytest.approx(0.0)

    def test_mcf_l2_sensitivity(self):
        # the paper's Figure 2: mcf gains dramatically from 0.25 -> 4MB L2
        mcf = get_profile("mcf")
        small = mcf.data_miss_rate(0.25 * 1024 * 8)
        large = mcf.data_miss_rate(4 * 1024 * 8)
        assert small > 2 * large

    def test_applu_is_cache_insensitive(self):
        # streaming: even the largest L2 leaves a large miss floor
        applu = get_profile("applu")
        small = applu.data_miss_rate(0.25 * 1024 * 8)
        large = applu.data_miss_rate(4 * 1024 * 8)
        assert large > 0.25
        assert small - large < 0.15

    def test_jbb_has_largest_instruction_pressure(self):
        il1_blocks = 16 * 8  # 16KB i-L1
        rates = {
            name: get_profile(name).instr_miss_rate(il1_blocks)
            for name in BENCHMARK_NAMES
        }
        assert max(rates, key=rates.get) in ("jbb", "gcc", "mesa")
        assert rates["jbb"] > rates["gzip"]

    def test_fp_benchmarks_have_fp_work(self):
        for name in ("ammp", "applu", "equake", "mesa"):
            assert get_profile(name).fp_fraction > 0.2

    def test_int_benchmarks_have_no_fp(self):
        for name in ("gcc", "gzip", "mcf", "twolf"):
            assert get_profile(name).fp_fraction == 0.0

    def test_memory_fraction_in_sane_band(self):
        for profile in SUITE.values():
            assert 0.25 <= profile.memory_fraction <= 0.5

    def test_footprint_bytes_helpers(self):
        profile = get_profile("gzip")
        assert profile.data_footprint_bytes() == profile.data_footprint_blocks * 128
        assert profile.instr_footprint_bytes() == profile.instr_footprint_blocks * 128


class TestProfileValidation:
    def base_kwargs(self):
        return dict(
            name="toy",
            description="",
            mix={"int": 0.5, "load": 0.3, "branch": 0.2},
            dep_distance_mean=3.0,
            second_operand_rate=0.5,
            load_chain_rate=0.1,
            branch_bias=0.9,
            unpredictable_rate=0.1,
            static_branches=16,
            data_reuse_strata=((0.5, 10), (0.5, 100)),
            instr_reuse_strata=((1.0, 20),),
            ifetch_run_mean=8.0,
            data_footprint_blocks=100,
            data_zipf=1.0,
            sequential_run_mean=2.0,
            instr_footprint_blocks=20,
            loop_length_mean=4.0,
            loop_iterations_mean=10.0,
            ref_instructions=1e9,
        )

    def make(self, **overrides):
        from repro.workloads import WorkloadProfile

        kwargs = self.base_kwargs()
        kwargs.update(overrides)
        return WorkloadProfile(**kwargs)

    def test_valid_profile_constructs(self):
        assert self.make().name == "toy"

    def test_rejects_bad_mix_sum(self):
        with pytest.raises(ProfileError, match="sums"):
            self.make(mix={"int": 0.5, "load": 0.3})

    def test_rejects_unknown_op_class(self):
        with pytest.raises(ProfileError, match="unknown op"):
            self.make(mix={"int": 0.5, "vector": 0.5})

    def test_rejects_small_dep_distance(self):
        with pytest.raises(ProfileError):
            self.make(dep_distance_mean=0.5)

    def test_rejects_rate_out_of_range(self):
        with pytest.raises(ProfileError):
            self.make(load_chain_rate=1.5)

    def test_rejects_bias_below_half(self):
        with pytest.raises(ProfileError):
            self.make(branch_bias=0.4)

    def test_rejects_non_positive_ref_instructions(self):
        with pytest.raises(ProfileError):
            self.make(ref_instructions=0)

    def test_rejects_bad_strata_sum(self):
        with pytest.raises(ProfileError, match="weights sum"):
            self.make(data_reuse_strata=((0.5, 10),))

    def test_rejects_non_increasing_strata(self):
        with pytest.raises(ProfileError, match="increasing"):
            self.make(data_reuse_strata=((0.5, 100), (0.5, 10)))

    def test_rejects_empty_strata(self):
        with pytest.raises(ProfileError):
            validate_strata("toy", "strata", ())


class TestReuseSurvival:
    STRATA = ((0.6, 10), (0.3, 100), (0.1, 1000))

    def test_at_zero_capacity_everything_misses(self):
        assert reuse_survival(self.STRATA, 0) == 1.0

    def test_beyond_all_strata_nothing_misses(self):
        assert reuse_survival(self.STRATA, 1001) == pytest.approx(0.0)

    def test_at_first_limit(self):
        assert reuse_survival(self.STRATA, 10) == pytest.approx(0.4)

    def test_at_second_limit(self):
        assert reuse_survival(self.STRATA, 100) == pytest.approx(0.1)

    @given(st.floats(1, 2000), st.floats(1, 2000))
    def test_monotone_decreasing(self, a, b):
        small, large = sorted((a, b))
        assert reuse_survival(self.STRATA, small) >= reuse_survival(
            self.STRATA, large
        ) - 1e-12

    @given(st.floats(0, 5000))
    def test_bounded(self, capacity):
        value = reuse_survival(self.STRATA, capacity)
        assert 0.0 <= value <= 1.0
