"""Tests for the out-of-order timing model."""

import numpy as np
import pytest

from repro.simulator import (
    Simulator,
    baseline_config,
    build_predictor,
    run_pipeline,
)
from repro.simulator.memory import StackDistanceMemory
from repro.workloads import generate_trace, get_profile


@pytest.fixture(scope="module")
def gzip_trace():
    return generate_trace(get_profile("gzip"), 2000, seed=5)


@pytest.fixture(scope="module")
def mcf_trace():
    return generate_trace(get_profile("mcf"), 2000, seed=5)


def cycles_of(trace, config):
    return run_pipeline(trace, config).cycles


class TestBasics:
    def test_positive_cycles(self, gzip_trace):
        assert cycles_of(gzip_trace, baseline_config()) > 0

    def test_deterministic(self, gzip_trace):
        config = baseline_config()
        assert cycles_of(gzip_trace, config) == cycles_of(gzip_trace, config)

    def test_ipc_cannot_exceed_width(self, gzip_trace):
        config = baseline_config()
        outcome = run_pipeline(gzip_trace, config)
        assert len(gzip_trace) / outcome.cycles <= config.width

    def test_instruction_class_counts_sum(self, gzip_trace):
        counts = run_pipeline(gzip_trace, baseline_config()).counts
        total = (
            counts.int_ops + counts.int_mul_ops + counts.fp_ops
            + counts.fp_div_ops + counts.loads + counts.stores + counts.branches
        )
        assert total == counts.instructions == len(gzip_trace)

    def test_memory_counts_propagated(self, mcf_trace):
        counts = run_pipeline(mcf_trace, baseline_config()).counts
        assert counts.dl1_accesses == counts.loads + counts.stores
        assert counts.dl1_misses <= counts.dl1_accesses
        assert counts.l2_misses == counts.memory_accesses

    def test_register_traffic_accounted(self, gzip_trace):
        counts = run_pipeline(gzip_trace, baseline_config()).counts
        assert counts.gpr_writes == counts.int_ops + counts.int_mul_ops + counts.loads
        assert counts.gpr_reads > 0


class TestResourceSensitivity:
    """More generous resources should never make execution slower."""

    def test_larger_dl1_reduces_misses(self, mcf_trace):
        # Cycles need not improve — a larger d-L1 also has a higher access
        # latency (the mechanism behind the paper's small-cache optima) —
        # but the miss count must be monotone in capacity.
        small = run_pipeline(
            mcf_trace, baseline_config().with_overrides(dl1_kb=8.0)
        ).counts
        large = run_pipeline(
            mcf_trace, baseline_config().with_overrides(dl1_kb=128.0)
        ).counts
        assert large.dl1_misses <= small.dl1_misses

    def test_larger_l2_helps_or_equal(self, mcf_trace):
        small = cycles_of(mcf_trace, baseline_config().with_overrides(l2_mb=0.25))
        large = cycles_of(mcf_trace, baseline_config().with_overrides(l2_mb=4.0))
        assert large <= small

    def test_l2_matters_more_for_mcf_than_gzip(self, mcf_trace, gzip_trace):
        def relative_gain(trace):
            small = cycles_of(trace, baseline_config().with_overrides(l2_mb=0.25))
            large = cycles_of(trace, baseline_config().with_overrides(l2_mb=4.0))
            return small / large

        assert relative_gain(mcf_trace) > relative_gain(gzip_trace)

    def test_more_registers_help_or_equal(self, gzip_trace):
        tight = cycles_of(
            gzip_trace,
            baseline_config().with_overrides(gpr_phys=40, fpr_phys=40, spr_phys=42),
        )
        roomy = cycles_of(
            gzip_trace,
            baseline_config().with_overrides(gpr_phys=130, fpr_phys=112, spr_phys=96),
        )
        assert roomy <= tight

    def test_wider_machine_helps_or_equal(self, gzip_trace):
        narrow = cycles_of(
            gzip_trace,
            baseline_config().with_overrides(width=2, functional_units=1,
                                             ls_queue=15, store_queue=14),
        )
        wide = cycles_of(
            gzip_trace,
            baseline_config().with_overrides(width=8, functional_units=4,
                                             ls_queue=45, store_queue=42),
        )
        assert wide <= narrow

    def test_in_order_never_faster(self, gzip_trace):
        ooo = cycles_of(gzip_trace, baseline_config())
        ino = cycles_of(gzip_trace, baseline_config().with_overrides(in_order=True))
        assert ino >= ooo


class TestDepthEffects:
    def test_deeper_pipeline_needs_more_cycles(self, gzip_trace):
        deep = cycles_of(gzip_trace, baseline_config().with_overrides(depth_fo4=12.0))
        shallow = cycles_of(
            gzip_trace, baseline_config().with_overrides(depth_fo4=30.0)
        )
        assert deep > shallow

    def test_mispredict_penalty_grows_with_depth(self):
        # a branchy, unpredictable trace suffers more cycles per
        # mispredict on the deep pipeline
        trace = generate_trace(get_profile("gcc"), 2000, seed=9)
        deep = run_pipeline(trace, baseline_config().with_overrides(depth_fo4=12.0))
        shallow = run_pipeline(trace, baseline_config().with_overrides(depth_fo4=30.0))
        # same predictor path on both configurations
        assert deep.counts.mispredicts == shallow.counts.mispredicts
        assert deep.cycles > shallow.cycles


class TestPredictorInteraction:
    def test_worse_predictor_never_faster(self, gzip_trace):
        config = baseline_config()

        class AlwaysWrong:
            def __init__(self):
                self.stats = build_predictor().stats

            def predict_and_update(self, site, taken):
                return False

        good = run_pipeline(gzip_trace, config)
        bad = run_pipeline(
            gzip_trace, config, predictor=AlwaysWrong()
        )
        assert bad.cycles >= good.cycles
        assert bad.counts.mispredicts == bad.counts.branches

    def test_perfect_predictor_at_least_as_fast(self, gzip_trace):
        config = baseline_config()

        class Oracle:
            def __init__(self):
                self.stats = build_predictor().stats

            def predict_and_update(self, site, taken):
                return True

        real = run_pipeline(gzip_trace, config)
        oracle = run_pipeline(gzip_trace, config, predictor=Oracle())
        assert oracle.cycles <= real.cycles
        assert oracle.counts.mispredicts == 0


class TestMSHRs:
    def test_fewer_mshrs_never_faster(self, mcf_trace):
        many = cycles_of(mcf_trace, baseline_config().with_overrides(mshr_count=16))
        one = cycles_of(mcf_trace, baseline_config().with_overrides(mshr_count=1))
        assert one >= many

    def test_single_mshr_serializes_memory_misses(self, mcf_trace):
        config = baseline_config().with_overrides(mshr_count=1, l2_mb=0.25)
        outcome = run_pipeline(mcf_trace, config)
        # every memory miss holds the only MSHR for the full memory
        # latency, so total cycles must cover misses x latency
        lower_bound = outcome.counts.memory_accesses * config.memory_latency
        assert outcome.cycles >= lower_bound * 0.8  # stores excluded

    def test_mshr_count_irrelevant_for_cache_resident_workload(self, gzip_trace):
        # gzip barely touches memory, so the MSHR pool should not matter
        many = cycles_of(gzip_trace, baseline_config().with_overrides(mshr_count=16))
        one = cycles_of(gzip_trace, baseline_config().with_overrides(mshr_count=1))
        assert one <= many * 1.05

    def test_mshrs_matter_more_for_memory_bound(self, mcf_trace, gzip_trace):
        def slowdown(trace):
            many = cycles_of(trace, baseline_config().with_overrides(mshr_count=16))
            two = cycles_of(trace, baseline_config().with_overrides(mshr_count=2))
            return two / many

        assert slowdown(mcf_trace) >= slowdown(gzip_trace)


class TestPrefetcher:
    def test_prefetch_never_hurts(self, mcf_trace, gzip_trace):
        for trace in (mcf_trace, gzip_trace):
            off = cycles_of(trace, baseline_config())
            on = cycles_of(trace, baseline_config().with_overrides(prefetch=True))
            assert on <= off

    def test_streaming_gains_most(self):
        from repro.workloads import generate_trace, get_profile

        applu = generate_trace(get_profile("applu"), 2000, seed=5)
        gzip = generate_trace(get_profile("gzip"), 2000, seed=5)

        def speedup(trace):
            off = cycles_of(trace, baseline_config())
            on = cycles_of(trace, baseline_config().with_overrides(prefetch=True))
            return off / on

        assert speedup(applu) > speedup(gzip) + 0.3

    def test_coverage_counted(self, mcf_trace):
        outcome = run_pipeline(
            mcf_trace, baseline_config().with_overrides(prefetch=True)
        )
        assert outcome.counts.prefetch_covered > 0

    def test_no_coverage_when_disabled(self, mcf_trace):
        outcome = run_pipeline(mcf_trace, baseline_config())
        assert outcome.counts.prefetch_covered == 0

    def test_traffic_still_counted_for_power(self, mcf_trace):
        # prefetch hides latency but the miss traffic remains visible
        off = run_pipeline(mcf_trace, baseline_config()).counts
        on = run_pipeline(
            mcf_trace, baseline_config().with_overrides(prefetch=True)
        ).counts
        assert on.memory_accesses == off.memory_accesses
        assert on.dl1_misses == off.dl1_misses


class TestMemoryInjection:
    def test_custom_memory_model_used(self, mcf_trace):
        config = baseline_config()

        class AlwaysMiss(StackDistanceMemory):
            def data_access(self, block, reuse):
                return super().data_access(block, 1 << 50)

        fast = run_pipeline(mcf_trace, config)
        slow = run_pipeline(mcf_trace, config, memory=AlwaysMiss(config))
        assert slow.cycles > fast.cycles
        assert slow.counts.memory_accesses == slow.counts.dl1_accesses


class TestSimulatorFacade:
    def test_result_fields(self, gzip_trace):
        result = Simulator().simulate(gzip_trace, baseline_config())
        assert result.benchmark == "gzip"
        assert result.instructions == len(gzip_trace)
        assert result.watts is not None and result.watts > 0
        assert result.bips > 0
        assert result.power_breakdown

    def test_memory_mode_functional(self, gzip_trace):
        result = Simulator(memory_mode="functional").simulate(
            gzip_trace, baseline_config()
        )
        assert result.bips > 0

    def test_unknown_memory_mode(self):
        with pytest.raises(ValueError):
            Simulator(memory_mode="magic")

    def test_trace_memoization(self):
        simulator = Simulator()
        a = simulator.trace_for(get_profile("gzip"), 500, seed=1)
        b = simulator.trace_for(get_profile("gzip"), 500, seed=1)
        assert a is b

    def test_warm_reduces_mispredicts(self, gzip_trace):
        cold = Simulator(warm=False).simulate(gzip_trace, baseline_config())
        warm = Simulator(warm=True).simulate(gzip_trace, baseline_config())
        assert warm.counts.mispredicts <= cold.counts.mispredicts
