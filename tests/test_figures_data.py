"""Structured checks on the data each figure experiment returns.

The smoke tests assert each experiment *runs*; these assert the returned
data has the shape and internal consistency the paper's figures rely on.
"""

import numpy as np
import pytest

from repro.experiments import run_experiment


class TestF2Data:
    def test_l2_trend_monotone_for_mcf(self, ctx):
        result = run_experiment("F2", ctx=ctx)
        trend = result.data["mcf"]["trend_l2"]
        levels = sorted(trend)
        delays = [trend[level]["mean_delay"] for level in levels]
        assert delays == sorted(delays, reverse=True)  # bigger L2, less delay

    def test_power_rises_with_l2_for_ammp(self, ctx):
        result = run_experiment("F2", ctx=ctx)
        trend = result.data["ammp"]["trend_l2"]
        levels = sorted(trend)
        powers = [trend[level]["mean_power"] for level in levels]
        assert powers[-1] > powers[0]

    def test_counts_cover_exploration_set(self, ctx):
        result = run_experiment("F2", ctx=ctx)
        trend = result.data["mcf"]["trend_l2"]
        assert sum(stats["count"] for stats in trend.values()) == len(
            ctx.exploration_points()
        )


class TestF3Data:
    def test_frontier_points_positive(self, ctx):
        result = run_experiment("F3", ctx=ctx)
        for benchmark, validation in result.data.items():
            assert (validation.model_delay > 0).all()
            assert (validation.simulated_delay > 0).all()

    def test_model_frontier_sorted(self, ctx):
        result = run_experiment("F3", ctx=ctx)
        for validation in result.data.values():
            assert (np.diff(validation.model_delay) >= 0).all()
            assert (np.diff(validation.model_power) <= 0).all()


class TestF6F7Data:
    def test_f6_relative_maxima(self, ctx):
        # each benchmark's curve peaks at exactly 1.0 at its own optimal
        # depth; the suite average of those curves therefore peaks at or
        # below 1.0 (benchmarks disagree on the optimum)
        result = run_experiment("F6", ctx=ctx)
        validation = result.data["validation"]
        for curve in (validation.predicted_original, validation.simulated_original):
            assert 0.8 <= curve.max() <= 1.0 + 1e-9

    def test_f7_power_falls_with_shallower_pipeline(self, ctx):
        result = run_experiment("F7", ctx=ctx)
        validation = result.data["validation"]
        watts = validation.predicted_watts["original"]
        assert watts[0] > watts[-1]  # 12 FO4 burns more than 30 FO4

    def test_f7_simulated_tracks_predicted_power(self, ctx):
        result = run_experiment("F7", ctx=ctx)
        validation = result.data["validation"]
        predicted = validation.predicted_watts["original"]
        simulated = validation.simulated_watts["original"]
        relative = np.abs(predicted - simulated) / simulated
        assert np.median(relative) < 0.15


class TestF8Data:
    def test_assignment_consistent_with_compromises(self, ctx):
        result = run_experiment("F8", ctx=ctx)
        mapping = result.data["map"]
        n_compromises = len(mapping.compromises)
        for cluster_index in mapping.assignment.values():
            assert 0 <= cluster_index < n_compromises


class TestF9Data:
    def test_f9b_simulated_not_wildly_above_predicted(self, ctx):
        predicted = run_experiment("F9a", ctx=ctx).data["sweep"]
        simulated = run_experiment("F9b", ctx=ctx).data["sweep"]
        # the paper: models over-estimate heterogeneity benefits
        assert simulated.average[-1] <= predicted.average[-1] * 1.3

    def test_k9_runs_each_benchmark_on_own_core(self, ctx):
        sweep = run_experiment("F9a", ctx=ctx).data["sweep"]
        # at max K, gains equal each benchmark's optimum/baseline ratio,
        # so none can be below a compromise's gain by much
        for gains in sweep.per_benchmark.values():
            assert gains[-1] >= max(gains) - 0.15


class TestCliModule:
    def test_python_dash_m_repro(self):
        import subprocess
        import sys

        result = subprocess.run(
            [sys.executable, "-m", "repro", "--version"],
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert result.returncode == 0
        assert "repro" in result.stdout
