"""Tests for simulation campaigns and model fitting."""

import pytest

from repro.harness import fit_campaign_models, get_scale, run_campaign
from repro.simulator import Simulator


@pytest.fixture(scope="module")
def mini_campaign():
    scale = get_scale("ci").with_overrides(
        name="mini", trace_length=800, n_train=50, n_validation=8
    )
    return run_campaign(Simulator(), scale=scale, benchmarks=["gzip", "mcf"])


class TestCampaignShape:
    def test_point_counts(self, mini_campaign):
        assert len(mini_campaign.train_points) == 50
        assert len(mini_campaign.validation_points) == 8

    def test_train_and_validation_disjoint(self, mini_campaign):
        assert not set(mini_campaign.train_points) & set(
            mini_campaign.validation_points
        )

    def test_datasets_per_benchmark(self, mini_campaign):
        assert set(mini_campaign.train) == {"gzip", "mcf"}
        assert set(mini_campaign.validation) == {"gzip", "mcf"}

    def test_all_benchmarks_share_points(self, mini_campaign):
        # the paper simulates every sampled design on every benchmark
        assert (
            mini_campaign.train["gzip"].points is mini_campaign.train_points
            or mini_campaign.train["gzip"].points == mini_campaign.train_points
        )
        assert mini_campaign.train["gzip"].points == mini_campaign.train["mcf"].points

    def test_dataset_accessor(self, mini_campaign):
        assert mini_campaign.dataset("gzip").benchmark == "gzip"
        assert mini_campaign.dataset("gzip", "validation").benchmark == "gzip"
        with pytest.raises(KeyError):
            mini_campaign.dataset("ammp")

    def test_dataset_rejects_unknown_split(self, mini_campaign):
        # "test" used to silently fall through to the validation table
        with pytest.raises(ValueError):
            mini_campaign.dataset("gzip", "test")
        with pytest.raises(ValueError):
            mini_campaign.dataset("gzip", "Validation")

    def test_metrics_positive(self, mini_campaign):
        for split in ("train", "validation"):
            for bench in ("gzip", "mcf"):
                dataset = mini_campaign.dataset(bench, split)
                assert (dataset.metrics["bips"] > 0).all()
                assert (dataset.metrics["watts"] > 0).all()

    def test_sampling_deterministic_at_same_scale(self, mini_campaign):
        scale = mini_campaign.scale
        again = run_campaign(Simulator(), scale=scale, benchmarks=["gzip"])
        assert again.train_points == mini_campaign.train_points


class TestSeedSensitivity:
    def test_different_seed_similar_accuracy(self, mini_campaign):
        """Model quality should be a property of the protocol, not the
        particular random sample: an independent draw trains models of
        comparable fit."""
        other_scale = mini_campaign.scale.with_overrides(seed=99)
        other = run_campaign(Simulator(), scale=other_scale, benchmarks=["gzip"])
        a = fit_campaign_models(mini_campaign)["gzip"]["bips"].r_squared
        b = fit_campaign_models(other)["gzip"]["bips"].r_squared
        assert abs(a - b) < 0.2
        assert other.train_points != mini_campaign.train_points


class TestBenchmarkSubsets:
    def test_context_with_two_benchmarks(self, test_scale, simulator, tmp_path,
                                         monkeypatch):
        from repro.studies import StudyContext, heterogeneity

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        scale = test_scale.with_overrides(name="duo", n_train=60, n_validation=10)
        ctx = StudyContext(scale=scale, simulator=simulator,
                           benchmarks=["gzip", "mcf"])
        optima = heterogeneity.benchmark_optima(ctx)
        assert set(optima) == {"gzip", "mcf"}
        sweep = heterogeneity.k_sweep(ctx)
        assert sweep.cluster_counts[-1] == 2


class TestModelFitting:
    def test_fit_campaign_models_structure(self, mini_campaign):
        models = fit_campaign_models(mini_campaign)
        assert set(models) == {"gzip", "mcf"}
        assert set(models["gzip"]) == {"bips", "watts"}

    def test_models_explain_training_data(self, mini_campaign):
        models = fit_campaign_models(mini_campaign)
        for bench in ("gzip", "mcf"):
            assert models[bench]["bips"].r_squared > 0.7
            assert models[bench]["watts"].r_squared > 0.9

    def test_parallel_matches_serial(self, mini_campaign):
        """Workers rebuild deterministic traces: results are bit-identical."""
        import numpy as np

        parallel = run_campaign(
            Simulator(),
            scale=mini_campaign.scale,
            benchmarks=["gzip", "mcf"],
            workers=2,
        )
        for bench in ("gzip", "mcf"):
            for split in ("train", "validation"):
                serial_metrics = mini_campaign.dataset(bench, split).metrics
                parallel_metrics = parallel.dataset(bench, split).metrics
                assert np.array_equal(
                    serial_metrics["bips"], parallel_metrics["bips"]
                )
                assert np.array_equal(
                    serial_metrics["watts"], parallel_metrics["watts"]
                )

    def test_progress_callback(self):
        scale = get_scale("ci").with_overrides(
            name="tiny", trace_length=500, n_train=5, n_validation=2
        )
        calls = []
        run_campaign(
            Simulator(),
            scale=scale,
            benchmarks=["gzip"],
            progress=lambda *args: calls.append(args),
        )
        assert len(calls) == 7  # 5 train + 2 validation
        assert calls[0][0] == "gzip"

    def test_parallel_progress_callback(self):
        """The parallel path fires the same (benchmark, split, done, total)
        stream as the serial path, advancing per completed chunk."""
        scale = get_scale("ci").with_overrides(
            name="tiny-par", trace_length=500, n_train=6, n_validation=3
        )
        calls = []
        run_campaign(
            Simulator(),
            scale=scale,
            benchmarks=["gzip"],
            progress=lambda *args: calls.append(args),
            workers=2,
        )
        assert calls, "parallel run_campaign dropped progress callbacks"
        per_split = {}
        for benchmark, split, done, total in calls:
            assert benchmark == "gzip"
            assert split in ("train", "validation")
            previous = per_split.get(split, 0)
            assert done > previous  # cumulative and increasing
            per_split[split] = done
            assert total == (6 if split == "train" else 3)
        assert per_split["train"] == 6
        assert per_split["validation"] == 3
