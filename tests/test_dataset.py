"""Tests for datasets and campaign assembly."""

import numpy as np
import pytest

from repro.designspace import exploration_space, sample_uar
from repro.harness import Dataset, DatasetError
from repro.simulator import Simulator
from repro.workloads import generate_trace, get_profile


@pytest.fixture(scope="module")
def space():
    return exploration_space()


@pytest.fixture(scope="module")
def small_dataset(space):
    simulator = Simulator()
    trace = generate_trace(get_profile("gzip"), 1000, seed=1)
    points = sample_uar(space, 6, seed=4)
    results = [simulator.simulate_point(space, p, trace) for p in points]
    return Dataset.from_results("gzip", space, points, results)


class TestConstruction:
    def test_from_results_lengths(self, small_dataset):
        assert len(small_dataset) == 6
        assert small_dataset.metrics["bips"].shape == (6,)
        assert small_dataset.metrics["watts"].shape == (6,)

    def test_from_results_length_mismatch(self, space):
        with pytest.raises(DatasetError):
            Dataset.from_results("x", space, [space.point_at(0)], [])

    def test_metric_length_mismatch(self, space):
        with pytest.raises(DatasetError):
            Dataset(
                benchmark="x",
                space=space,
                points=[space.point_at(0)],
                metrics={"bips": np.zeros(3)},
            )

    def test_requires_power(self, space):
        simulator = Simulator()
        trace = generate_trace(get_profile("gzip"), 500, seed=1)
        result = simulator.simulate_point(space, space.point_at(0), trace)
        result.watts = None
        with pytest.raises(DatasetError, match="PowerModel"):
            Dataset.from_results("gzip", space, [space.point_at(0)], [result])


class TestColumns:
    def test_predictor_columns_match_encoding(self, small_dataset, space):
        columns = small_dataset.predictor_columns()
        assert set(columns) == set(space.names)
        # width is log2-encoded
        widths = [p["width"] for p in small_dataset.points]
        assert columns["width"] == pytest.approx(np.log2(widths))

    def test_columns_include_metrics(self, small_dataset):
        columns = small_dataset.columns()
        assert "bips" in columns and "watts" in columns
        assert "depth" in columns

    def test_metric_name_collision_rejected(self, space):
        with pytest.raises(DatasetError, match="collide"):
            Dataset(
                benchmark="x",
                space=space,
                points=[space.point_at(0)],
                metrics={"depth": np.zeros(1)},
            ).columns()


class TestSubset:
    def test_subset_selects_rows(self, small_dataset):
        subset = small_dataset.subset([0, 2])
        assert len(subset) == 2
        assert subset.points[1] == small_dataset.points[2]
        assert subset.metrics["bips"][1] == small_dataset.metrics["bips"][2]

    def test_subset_preserves_benchmark(self, small_dataset):
        assert small_dataset.subset([0]).benchmark == "gzip"
