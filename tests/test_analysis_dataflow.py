"""Tests for the interprocedural dataflow layer.

Covers the per-function summaries, call-graph resolution (including
re-exports through package ``__init__`` alias maps), pool-entrypoint
detection, reachability, the RNG-factory fixpoint, the content-keyed
summary cache, and parallel-vs-serial equivalence of the runner.
"""

import ast
import json
from pathlib import Path

import pytest

from repro.analysis import (
    Baseline,
    SummaryCache,
    UsageError,
    analyze_paths,
    build_index,
    collect_files,
    dataflow_index,
    summarize_module,
)
from repro.analysis.context import build_module_context
from repro.analysis.dataflow import ModuleSummary, cache_key

FIXTURES = Path(__file__).parent / "fixtures" / "analysis"


def _summary(tmp_path, relparts, source):
    path = tmp_path.joinpath(*relparts)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source)
    ctx, error = build_module_context(path, tmp_path)
    assert error is None, error
    return summarize_module(ctx)


def _tree(tmp_path, files):
    for relparts, source in files.items():
        path = tmp_path.joinpath(*relparts.split("/"))
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source)
    return tmp_path


class TestSummaries:
    def test_module_level_facts(self, tmp_path):
        summary = _summary(tmp_path, ("mod.py",), (
            '"""Doc."""\n'
            "REGISTRY = {}\n"
            "LIMIT = 3\n"
            "\n"
            "def f():\n"
            "    return LIMIT\n"
            "\n"
            "class Holder:\n"
            "    slots = []\n"
        ))
        assert summary.module == "mod"
        assert summary.mutable_globals == ("REGISTRY",)
        assert summary.defs == {"f": "mod.f", "Holder": "mod.Holder"}
        assert summary.classes["Holder"].mutable_attrs == ("slots",)

    def test_global_write_kinds(self, tmp_path):
        summary = _summary(tmp_path, ("mod.py",), (
            "COUNT = 0\n"
            "CACHE = {}\n"
            "\n"
            "def bump():\n"
            "    global COUNT\n"
            "    COUNT += 1\n"
            "\n"
            "def reset():\n"
            "    global COUNT\n"
            "    COUNT = 0\n"
            "\n"
            "def stash(k, v):\n"
            "    CACHE[k] = v\n"
        ))
        by_name = {f.name: f for f in summary.functions}
        assert [(w.name, w.kind) for w in by_name["bump"].global_writes] == [
            ("COUNT", "augment")
        ]
        assert [(w.name, w.kind) for w in by_name["reset"].global_writes] == [
            ("COUNT", "rebind")
        ]
        assert [(w.name, w.kind) for w in by_name["stash"].global_writes] == [
            ("CACHE", "mutate")
        ]

    def test_local_shadow_is_not_a_global_write(self, tmp_path):
        summary = _summary(tmp_path, ("mod.py",), (
            "CACHE = {}\n"
            "\n"
            "def pure():\n"
            "    CACHE = {}\n"
            "    CACHE['k'] = 1\n"
            "    return CACHE\n"
        ))
        fn = summary.functions[0]
        assert fn.global_writes == ()

    def test_param_mutations(self, tmp_path):
        summary = _summary(tmp_path, ("mod.py",), (
            "def impure(bucket, block):\n"
            "    bucket.append(1)\n"
            "    block.bips[0] = 0.0\n"
            "    return bucket\n"
        ))
        fn = summary.functions[0]
        assert [(m.name, m.how) for m in fn.param_mutations] == [
            ("block", "item"),
            ("bucket", "method:append"),
        ] or [(m.name, m.how) for m in fn.param_mutations] == [
            ("bucket", "method:append"),
            ("block", "item"),
        ]

    def test_rng_events_and_escapes(self, tmp_path):
        summary = _summary(tmp_path, ("mod.py",), (
            "import numpy as np\n"
            "\n"
            "def factory(seed=None):\n"
            "    return np.random.default_rng(seed)\n"
            "\n"
            "def fixed():\n"
            "    rng = np.random.default_rng(7)\n"
            "    return rng\n"
            "\n"
            "def local_only():\n"
            "    rng = np.random.default_rng(3)\n"
            "    return float(rng.normal())\n"
        ))
        by_name = {f.name: f for f in summary.functions}
        factory_event = by_name["factory"].rng[0]
        assert factory_event.seed == "param:seed"
        assert "return" in factory_event.escapes
        fixed_event = by_name["fixed"].rng[0]
        assert fixed_event.seed == "literal"
        assert "return" in fixed_event.escapes
        assert by_name["local_only"].rng[0].escapes == ()

    def test_nested_functions_get_qualnames(self, tmp_path):
        summary = _summary(tmp_path, ("mod.py",), (
            "def outer(trace):\n"
            "    def build():\n"
            "        return 1\n"
            "    return trace.derived(('k',), build)\n"
        ))
        names = {f.qualname for f in summary.functions}
        assert names == {"mod.outer", "mod.outer.build"}
        outer = next(f for f in summary.functions if f.name == "outer")
        derived_call = next(
            c for c in outer.calls if c.target.endswith("derived")
        )
        refs = [a.ref for a in derived_call.args if a.ref]
        assert refs == ["mod.outer.build"]

    def test_roundtrip_through_dict(self, tmp_path):
        summary = _summary(tmp_path, ("pkg", "mod.py"), (
            "import numpy as np\n"
            "STATE = []\n"
            "\n"
            "def f(seed=None):\n"
            "    STATE.append(seed)\n"
            "    return np.random.default_rng(seed)\n"
        ))
        rebuilt = ModuleSummary.from_dict(
            json.loads(json.dumps(summary.to_dict()))
        )
        assert rebuilt == summary


class TestGraph:
    def test_resolution_follows_package_reexports(self, tmp_path):
        root = _tree(tmp_path, {
            "pkg/__init__.py": "from .impl import helper\n",
            "pkg/impl.py": "def helper():\n    return 1\n",
            "caller.py": (
                "from pkg import helper\n"
                "\n"
                "def go():\n"
                "    return helper()\n"
            ),
        })
        index = dataflow_index([root], root=root)
        assert index.calls["caller.go"] == ("pkg.impl.helper",)

    def test_chunktask_positional_and_kwarg_entrypoints(self, tmp_path):
        root = _tree(tmp_path, {
            "flow.py": (
                "from tasks import ChunkTask\n"
                "\n"
                "def work(chunk):\n"
                "    return chunk\n"
                "\n"
                "def other(chunk):\n"
                "    return chunk\n"
                "\n"
                "def drive(chunks):\n"
                "    first = [ChunkTask(i, work, (c,)) for i, c in "
                "enumerate(chunks)]\n"
                "    second = [ChunkTask(index=0, fn=other, args=(c,)) "
                "for c in chunks]\n"
                "    return first + second\n"
            ),
            "tasks.py": (
                "class ChunkTask:\n"
                "    def __init__(self, index, fn, args):\n"
                "        self.index = index\n"
                "        self.fn = fn\n"
                "        self.args = args\n"
            ),
        })
        index = dataflow_index([root], root=root)
        assert index.entrypoints == ("flow.other", "flow.work")

    def test_reachability_reports_originating_entrypoint(self, tmp_path):
        root = _tree(tmp_path, {
            "m.py": (
                "def worker(c):\n"
                "    return helper(c)\n"
                "\n"
                "def helper(c):\n"
                "    return deep(c)\n"
                "\n"
                "def deep(c):\n"
                "    return c\n"
                "\n"
                "def unrelated():\n"
                "    return 0\n"
            ),
        })
        index = dataflow_index([root], root=root)
        origin = index.reachable_from(("m.worker",))
        assert origin == {
            "m.worker": "m.worker",
            "m.helper": "m.worker",
            "m.deep": "m.worker",
        }

    def test_graph_json_shape(self, tmp_path):
        root = _tree(tmp_path, {
            "a.py": "def f():\n    return 1\n",
        })
        payload = dataflow_index([root], root=root).to_json()
        assert set(payload) == {
            "modules", "imports", "calls", "entrypoints",
            "rng_factories", "memo_registered",
        }

    def test_rng_factory_fixpoint_follows_forwarders(self):
        root = FIXTURES / "rng_escape"
        index = dataflow_index([root], root=root)
        assert set(index.rng_factories) == {
            "factory.make_rng", "factory.forward_rng",
        }
        forward = index.rng_factories["factory.forward_rng"]
        assert forward.seed_param == "seed"
        assert forward.none_default


class TestSummaryCache:
    def _source(self, tag="v1"):
        return f'"""Doc {tag}."""\n\nVALUE = 1\n'

    def test_cold_then_warm_run(self, tmp_path):
        root = _tree(tmp_path, {"src/a.py": self._source()})
        cache_dir = tmp_path / "cache"
        cold = analyze_paths([root / "src"], root=root, cache_dir=cache_dir)
        assert cold.cache_hits == 0
        warm = analyze_paths([root / "src"], root=root, cache_dir=cache_dir)
        assert warm.cache_hits == 1
        assert [f.to_dict() for f in warm.findings] == [
            f.to_dict() for f in cold.findings
        ]

    def test_edit_invalidates_only_the_edited_file(self, tmp_path):
        root = _tree(tmp_path, {
            "src/a.py": self._source(),
            "src/b.py": self._source(),
        })
        cache_dir = tmp_path / "cache"
        analyze_paths([root / "src"], root=root, cache_dir=cache_dir)
        (root / "src" / "a.py").write_text(self._source("v2"))
        rerun = analyze_paths([root / "src"], root=root, cache_dir=cache_dir)
        assert rerun.cache_hits == 1  # b.py only

    def test_rule_selection_changes_the_key(self, tmp_path):
        source = self._source()
        assert cache_key("a.py", source.encode(), ("DET001",)) != cache_key(
            "a.py", source.encode(), ("DET001", "HYG001")
        )
        assert cache_key("a.py", source.encode(), ("DET001",)) != cache_key(
            "b.py", source.encode(), ("DET001",)
        )

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        root = _tree(tmp_path, {"src/a.py": self._source()})
        cache_dir = tmp_path / "cache"
        analyze_paths([root / "src"], root=root, cache_dir=cache_dir)
        for entry in cache_dir.glob("*.json"):
            entry.write_text("{not json")
        rerun = analyze_paths([root / "src"], root=root, cache_dir=cache_dir)
        assert rerun.cache_hits == 0
        # And the corrupt entries were rewritten with good payloads.
        again = analyze_paths([root / "src"], root=root, cache_dir=cache_dir)
        assert again.cache_hits == 1

    def test_cached_findings_round_trip_through_baseline(self, tmp_path):
        root = _tree(tmp_path, {
            "src/bad.py": (
                '"""Doc."""\n\nimport numpy as np\n\nnp.random.seed(0)\n'
            ),
        })
        cache_dir = tmp_path / "cache"
        cold = analyze_paths([root / "src"], root=root, cache_dir=cache_dir)
        assert [f.rule for f in cold.findings] == ["DET001"]
        baseline = Baseline.from_findings(cold.findings, reason="accepted")
        warm = analyze_paths(
            [root / "src"], root=root, cache_dir=cache_dir, baseline=baseline
        )
        assert warm.cache_hits == 1
        assert warm.findings == []
        assert len(warm.suppressed) == 1

    def test_prune_drops_dead_entries(self, tmp_path):
        cache = SummaryCache(tmp_path / "cache")
        (tmp_path / "cache").mkdir()
        (tmp_path / "cache" / "dead.json").write_text("{}")
        (tmp_path / "cache" / "live.json").write_text("{}")
        assert cache.prune(["live"]) == 1
        assert (tmp_path / "cache" / "live.json").exists()


class TestParallelRunner:
    def test_jobs_matches_serial_findings(self):
        for subdir in ("concurrency", "rng_escape", "purity"):
            root = FIXTURES / subdir
            serial = analyze_paths([root], root=root)
            parallel = analyze_paths([root], root=root, jobs=2)
            assert [f.to_dict() for f in parallel.findings] == [
                f.to_dict() for f in serial.findings
            ], subdir

    def test_jobs_with_cache_populates_it(self, tmp_path):
        root = _tree(tmp_path, {
            "src/a.py": '"""Doc."""\n\nVALUE = 1\n',
            "src/b.py": '"""Doc."""\n\nOTHER = 2\n',
        })
        cache_dir = tmp_path / "cache"
        cold = analyze_paths(
            [root / "src"], root=root, jobs=2, cache_dir=cache_dir
        )
        assert cold.cache_hits == 0
        warm = analyze_paths(
            [root / "src"], root=root, jobs=2, cache_dir=cache_dir
        )
        assert warm.cache_hits == 2


class TestCollectFilesUsage:
    def test_explicit_non_python_file_raises_usage_error(self, tmp_path):
        notes = tmp_path / "notes.md"
        notes.write_text("# notes\n")
        with pytest.raises(UsageError):
            collect_files([notes])

    def test_directories_and_py_files_still_collect(self, tmp_path):
        (tmp_path / "a.py").write_text("X = 1\n")
        sub = tmp_path / "sub"
        sub.mkdir()
        (sub / "b.py").write_text("Y = 2\n")
        (sub / "data.json").write_text("{}")
        files = collect_files([tmp_path / "a.py", sub])
        assert [f.name for f in files] == ["a.py", "b.py"]


class TestProjectRulesOnRealTree:
    """The new rules' verdict on today's src/ is part of the contract."""

    REPO = Path(__file__).resolve().parents[1]

    def test_src_entrypoints_are_the_known_worker_mains(self):
        # Three pool chunk workers, plus the distributed backend's
        # process main and its heartbeat thread (``Process``/``Thread``
        # ``target`` callables count as worker entrypoints too).
        index = dataflow_index([self.REPO / "src"], root=self.REPO)
        assert index.entrypoints == (
            "repro.harness.campaign._simulate_chunk",
            "repro.harness.distributed._Heartbeat._run",
            "repro.harness.distributed._worker_process_main",
            "repro.harness.resilience._run_chunk",
            "repro.harness.sweep._sweep_chunk",
        )

    def test_isolated_registry_swap_is_reachable_from_workers(self):
        index = dataflow_index([self.REPO / "src"], root=self.REPO)
        origin = index.reachable_from()
        assert "repro.obs.metrics.isolated_registry" in origin
