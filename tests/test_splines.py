"""Tests for restricted cubic splines."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.regression import (
    HARRELL_QUANTILES,
    SplineError,
    quantile_knots,
    rcs_basis,
    rcs_column_names,
)


class TestKnots:
    def test_quantile_positions(self):
        x = np.linspace(0, 100, 1001)
        knots = quantile_knots(x, 3)
        assert knots == pytest.approx([10, 50, 90], abs=0.5)

    def test_four_knot_positions(self):
        x = np.linspace(0, 100, 1001)
        knots = quantile_knots(x, 4)
        assert knots == pytest.approx([5, 35, 65, 95], abs=0.5)

    def test_discrete_predictor_thinning(self):
        # width takes three values; knots must still be usable
        x = np.array([2.0, 4.0, 8.0] * 50)
        knots = quantile_knots(x, 4)
        assert len(knots) >= 3
        assert len(np.unique(knots)) == len(knots)

    def test_constant_predictor_collapses(self):
        knots = quantile_knots(np.full(100, 7.0), 3)
        assert len(knots) < 3  # caller must fall back to linear

    def test_unsupported_knot_count(self):
        with pytest.raises(SplineError):
            quantile_knots(np.arange(10.0), 8)

    def test_empty_sample(self):
        with pytest.raises(SplineError):
            quantile_knots(np.array([]), 3)

    def test_supported_counts_documented(self):
        assert set(HARRELL_QUANTILES) == {3, 4, 5, 6, 7}


class TestBasis:
    KNOTS = np.array([1.0, 3.0, 6.0, 10.0])

    def test_shape(self):
        x = np.linspace(0, 12, 50)
        basis = rcs_basis(x, self.KNOTS)
        assert basis.shape == (50, 3)  # k-1 columns

    def test_first_column_is_x(self):
        x = np.linspace(0, 12, 50)
        assert (rcs_basis(x, self.KNOTS)[:, 0] == x).all()

    def test_zero_below_first_knot(self):
        x = np.linspace(-5, 0.99, 20)
        basis = rcs_basis(x, self.KNOTS)
        assert np.allclose(basis[:, 1:], 0.0)

    def test_linear_beyond_boundary_knots(self):
        # second differences vanish outside [t1, tk]
        for segment in (np.linspace(-10, 0.9, 30), np.linspace(10.1, 30, 30)):
            basis = rcs_basis(segment, self.KNOTS)
            for j in range(basis.shape[1]):
                second_diff = np.diff(basis[:, j], n=2)
                assert np.allclose(second_diff, 0.0, atol=1e-8), j

    def test_continuity_of_second_derivative(self):
        # numerically estimate f'' just left/right of each interior knot
        h = 1e-5
        for knot in self.KNOTS[1:-1]:
            for j in range(1, 3):
                def f(v):
                    return rcs_basis(np.array([v]), self.KNOTS)[0, j]

                left = (f(knot - h) - 2 * f(knot - 2 * h) + f(knot - 3 * h)) / h**2
                right = (f(knot + 3 * h) - 2 * f(knot + 2 * h) + f(knot + h)) / h**2
                assert left == pytest.approx(right, abs=1e-2)

    def test_rejects_too_few_knots(self):
        with pytest.raises(SplineError):
            rcs_basis(np.arange(5.0), [1.0, 2.0])

    def test_rejects_unsorted_knots(self):
        with pytest.raises(SplineError):
            rcs_basis(np.arange(5.0), [3.0, 1.0, 2.0])

    def test_rejects_duplicate_knots(self):
        with pytest.raises(SplineError):
            rcs_basis(np.arange(5.0), [1.0, 1.0, 2.0])

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.floats(-50, 50), min_size=1, max_size=40))
    def test_basis_finite(self, values):
        basis = rcs_basis(np.array(values), self.KNOTS)
        assert np.isfinite(basis).all()

    def test_five_knots_give_four_columns(self):
        knots = np.array([1.0, 2.0, 4.0, 7.0, 11.0])
        assert rcs_basis(np.linspace(0, 12, 10), knots).shape == (10, 4)


class TestNames:
    def test_column_names(self):
        assert rcs_column_names("depth", 4) == ("depth", "depth'", "depth''")

    def test_three_knots(self):
        assert rcs_column_names("l2", 3) == ("l2", "l2'")
