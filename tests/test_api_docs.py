"""Meta-tests: public API hygiene.

Every public module carries a docstring; everything exported through an
``__all__`` exists and is documented.  These tests keep the library
honest as it grows.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.analysis",
    "repro.designspace",
    "repro.workloads",
    "repro.simulator",
    "repro.power",
    "repro.regression",
    "repro.cluster",
    "repro.metrics",
    "repro.obs",
    "repro.studies",
    "repro.harness",
    "repro.baselines",
]


def iter_modules():
    for package_name in PACKAGES:
        package = importlib.import_module(package_name)
        yield package
        if hasattr(package, "__path__"):
            for info in pkgutil.iter_modules(package.__path__):
                yield importlib.import_module(f"{package_name}.{info.name}")


ALL_MODULES = list({module.__name__: module for module in iter_modules()}.values())


@pytest.mark.parametrize("module", ALL_MODULES, ids=lambda m: m.__name__)
def test_module_has_docstring(module):
    assert module.__doc__ and module.__doc__.strip(), module.__name__


@pytest.mark.parametrize(
    "package_name",
    [name for name in PACKAGES if name != "repro"],
)
def test_all_exports_exist_and_documented(package_name):
    package = importlib.import_module(package_name)
    exported = getattr(package, "__all__", [])
    assert exported, f"{package_name} should declare __all__"
    for name in exported:
        assert hasattr(package, name), f"{package_name}.{name} missing"
        item = getattr(package, name)
        if inspect.isclass(item) or inspect.isfunction(item):
            assert item.__doc__ and item.__doc__.strip(), (
                f"{package_name}.{name} lacks a docstring"
            )


def test_public_classes_have_documented_public_methods():
    from repro.designspace import DesignSpace
    from repro.regression import FittedModel
    from repro.simulator import MachineConfig, Simulator
    from repro.studies import StudyContext

    for cls in (DesignSpace, Simulator, MachineConfig, FittedModel, StudyContext):
        for name, member in inspect.getmembers(cls):
            if name.startswith("_"):
                continue
            if inspect.isfunction(member):
                assert member.__doc__, f"{cls.__name__}.{name} lacks a docstring"


def test_version_exported():
    assert repro.__version__
