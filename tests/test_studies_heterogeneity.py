"""Tests for the heterogeneity study (Section 6)."""

import numpy as np
import pytest

from repro.studies import heterogeneity


class TestBenchmarkOptima:
    def test_keys_are_suite(self, ctx):
        optima = heterogeneity.benchmark_optima(ctx)
        assert set(optima) == set(ctx.benchmarks)

    def test_memoized_on_context(self, ctx):
        a = heterogeneity.benchmark_optima(ctx)
        b = heterogeneity.benchmark_optima(ctx)
        assert a is b


class TestClustering:
    def test_k4_produces_at_most_4_clusters(self, ctx):
        clustering = heterogeneity.cluster_architectures(ctx, 4)
        assert 1 <= clustering.k <= 4

    def test_every_benchmark_assigned(self, ctx):
        clustering = heterogeneity.cluster_architectures(ctx, 3)
        assert set(clustering.assignment) == set(ctx.benchmarks)
        for benchmark, index in clustering.assignment.items():
            assert benchmark in clustering.clusters[index].benchmarks

    def test_compromise_points_on_grid(self, ctx):
        clustering = heterogeneity.cluster_architectures(ctx, 4)
        for cluster in clustering.clusters:
            assert cluster.point in ctx.exploration_space

    def test_k_equals_n_reproduces_optima(self, ctx):
        optima = heterogeneity.benchmark_optima(ctx)
        clustering = heterogeneity.cluster_architectures(ctx, len(optima))
        # benchmarks with identical optima may legitimately share a
        # cluster; every member's own optimum must equal its cluster's
        # compromise architecture
        for cluster in clustering.clusters:
            for name in cluster.benchmarks:
                assert cluster.point == optima[name].point

    def test_singleton_clustering(self, ctx):
        clustering = heterogeneity.cluster_architectures(ctx, 1)
        assert clustering.k == 1
        assert len(clustering.clusters[0].benchmarks) == len(ctx.benchmarks)

    def test_weights_change_clustering_space(self, ctx):
        # zero weight on everything but L2 clusters purely by cache size
        clustering = heterogeneity.cluster_architectures(
            ctx, 2,
            weights={
                name: 0.0
                for name in ctx.exploration_space.names
                if name != "l2_mb"
            },
        )
        l2_by_cluster = [
            {optimum_l2 for optimum_l2 in
             (heterogeneity.benchmark_optima(ctx)[b].point["l2_mb"]
              for b in cluster.benchmarks)}
            for cluster in clustering.clusters
        ]
        # clusters must be contiguous in l2: no value can belong to both
        if len(l2_by_cluster) == 2:
            assert not (l2_by_cluster[0] & l2_by_cluster[1])


class TestTable4:
    def test_annotated_metrics(self, ctx):
        clustering = heterogeneity.table4(ctx, k=4)
        for cluster in clustering.clusters:
            assert np.isfinite(cluster.mean_delay)
            assert np.isfinite(cluster.mean_power)
            assert cluster.mean_power > 0


class TestKSweep:
    def test_counts_and_shapes(self, ctx):
        sweep = heterogeneity.k_sweep(ctx, max_k=4)
        assert sweep.cluster_counts == [0, 1, 2, 3, 4]
        assert len(sweep.average) == 5
        for gains in sweep.per_benchmark.values():
            assert len(gains) == 5

    def test_k0_is_baseline_unity(self, ctx):
        sweep = heterogeneity.k_sweep(ctx, max_k=2)
        assert sweep.average[0] == pytest.approx(1.0)

    def test_full_heterogeneity_is_upper_bound_per_benchmark(self, ctx):
        sweep = heterogeneity.k_sweep(ctx)
        max_k = sweep.cluster_counts[-1]
        for benchmark, gains in sweep.per_benchmark.items():
            # at K=9 every benchmark runs its own predicted optimum: no
            # smaller K's compromise can beat it (modulo grid snapping)
            assert gains[-1] >= max(gains) - 0.15

    def test_average_gain_grows_with_heterogeneity(self, ctx):
        sweep = heterogeneity.k_sweep(ctx)
        assert sweep.average[-1] >= sweep.average[1] - 1e-9

    def test_simulated_sweep(self, ctx):
        sweep = heterogeneity.k_sweep(ctx, max_k=2, simulate=True)
        assert sweep.simulated
        assert all(g > 0 for g in sweep.average)


class TestDelayPowerMap:
    def test_map_covers_suite(self, ctx):
        mapping = heterogeneity.delay_power_map(ctx)
        assert set(mapping.optima) == set(ctx.benchmarks)
        assert len(mapping.compromises) >= 1
        for delay, power in mapping.optima.values():
            assert delay > 0 and power > 0
