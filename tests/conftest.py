"""Shared fixtures.

The expensive artifacts — simulation campaign, fitted models — are built
once per session at a tiny scale and shared by every study/experiment
test through a single :class:`StudyContext`.
"""

from __future__ import annotations

import os

import pytest

from repro.harness import get_scale
from repro.simulator import Simulator, baseline_config
from repro.studies import StudyContext
from repro.workloads import generate_trace, get_profile

#: Scale used by the test suite: even smaller than "ci" so the full suite
#: stays fast; statistical assertions are calibrated to these knobs.
TEST_SCALE = get_scale("ci").with_overrides(
    name="test",
    trace_length=1500,
    n_train=70,
    n_validation=15,
    exploration_limit=800,
    per_depth_designs=100,
    frontier_validations=3,
    depth_validations=2,
)


@pytest.fixture(scope="session")
def test_scale():
    return TEST_SCALE


@pytest.fixture(scope="session", autouse=True)
def _isolated_cache(tmp_path_factory):
    """Point the campaign cache at a session-temporary directory."""
    cache = tmp_path_factory.mktemp("repro-cache")
    old = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(cache)
    yield cache
    if old is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = old


@pytest.fixture(scope="session")
def simulator():
    return Simulator()


@pytest.fixture(scope="session")
def ctx(test_scale, simulator):
    """Session-wide study context (one campaign + one model fit)."""
    return StudyContext(scale=test_scale, simulator=simulator)


@pytest.fixture(scope="session")
def baseline():
    return baseline_config()


@pytest.fixture(scope="session")
def small_traces():
    """Short traces for a few representative benchmarks."""
    return {
        name: generate_trace(get_profile(name), 1500, seed=3)
        for name in ("ammp", "mcf", "gzip")
    }
