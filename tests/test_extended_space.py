"""End-to-end tests of the extended (future-work) design space.

Section 8 proposes adding cache associativity and in-order execution; the
library supports both through :func:`repro.designspace.extended_space`,
the simulator's config resolution, and the extended model presets.
"""

import numpy as np
import pytest

from repro.designspace import DesignEncoder, extended_space, sample_uar
from repro.regression import (
    extended_performance_spec,
    extended_power_spec,
    fit_ols,
    prediction_errors,
)
from repro.simulator import Simulator
from repro.workloads import generate_trace, get_profile


@pytest.fixture(scope="module")
def extended_dataset():
    """Simulate a small UAR sample of the extended space on gzip."""
    space = extended_space()
    simulator = Simulator()
    trace = generate_trace(get_profile("gzip"), 1200, seed=9)
    points = sample_uar(space, 90, seed=9)
    results = [simulator.simulate_point(space, p, trace) for p in points]
    encoder = DesignEncoder(space)
    matrix = encoder.encode(points)
    data = {n: matrix[:, j] for j, n in enumerate(encoder.feature_names)}
    data["bips"] = np.array([r.bips for r in results])
    data["watts"] = np.array([r.watts for r in results])
    return space, points, data


class TestExtendedSimulation:
    def test_in_order_points_are_slower(self, extended_dataset):
        space, points, data = extended_dataset
        in_order = np.array([p["in_order"] for p in points], dtype=bool)
        if in_order.any() and (~in_order).any():
            assert data["bips"][in_order].mean() < data["bips"][~in_order].mean()

    def test_all_simulations_completed(self, extended_dataset):
        _, points, data = extended_dataset
        assert data["bips"].shape == (len(points),)
        assert (data["watts"] > 0).all()


class TestExtendedModels:
    def test_performance_model_fits(self, extended_dataset):
        _, _, data = extended_dataset
        model = fit_ols(extended_performance_spec(), data)
        assert model.r_squared > 0.7

    def test_power_model_fits(self, extended_dataset):
        _, _, data = extended_dataset
        model = fit_ols(extended_power_spec(), data)
        assert model.r_squared > 0.9

    def test_extended_predictors_present(self):
        spec = extended_performance_spec()
        assert "dl1_assoc" in spec.predictors
        assert "in_order" in spec.predictors

    def test_in_order_effect_predicted(self, extended_dataset):
        space, _, data = extended_dataset
        model = fit_ols(extended_performance_spec(), data)
        base = space.snap(
            depth=18, width=4, gpr_phys=80, br_resv=12,
            il1_kb=64, dl1_kb=32, l2_mb=2.0, dl1_assoc=2, in_order=0,
        )
        encoder = DesignEncoder(space)
        matrix = encoder.encode([base, base.replace(in_order=1)])
        columns = {n: matrix[:, j] for j, n in enumerate(encoder.feature_names)}
        ooo, ino = model.predict(columns)
        assert ino < ooo

    def test_validation_error_reasonable(self, extended_dataset):
        _, _, data = extended_dataset
        n = data["bips"].size
        train = {k: v[: n - 15] for k, v in data.items()}
        test = {k: v[n - 15 :] for k, v in data.items()}
        model = fit_ols(extended_performance_spec(), train)
        errors = prediction_errors(test["bips"], model.predict(test))
        assert np.median(errors) < 0.25
