"""Tests for the synthetic trace generator."""

import numpy as np
import pytest

from repro.workloads import (
    BENCHMARK_NAMES,
    OP_BRANCH,
    OP_LOAD,
    OP_STORE,
    TraceGenerator,
    generate_trace,
    get_profile,
)
from repro.workloads.generator import sample_reuse_distances
from repro.workloads.trace import NO_DATA, NO_FETCH


@pytest.fixture(scope="module")
def ammp_trace():
    return generate_trace(get_profile("ammp"), 6000, seed=11)


class TestDeterminism:
    def test_same_seed_identical(self):
        a = generate_trace(get_profile("gzip"), 2000, seed=4)
        b = generate_trace(get_profile("gzip"), 2000, seed=4)
        for column in ("op", "src1", "src2", "mem_block", "data_reuse",
                       "iblock", "instr_reuse", "taken", "branch_site"):
            assert (getattr(a, column) == getattr(b, column)).all(), column

    def test_different_seeds_differ(self):
        a = generate_trace(get_profile("gzip"), 2000, seed=4)
        b = generate_trace(get_profile("gzip"), 2000, seed=5)
        assert not (a.op == b.op).all() or not (a.src1 == b.src1).all()

    def test_different_benchmarks_differ_with_same_seed(self):
        a = generate_trace(get_profile("gzip"), 2000, seed=4)
        b = generate_trace(get_profile("mcf"), 2000, seed=4)
        assert not (a.op == b.op).all()


class TestStructure:
    def test_length(self, ammp_trace):
        assert len(ammp_trace) == 6000

    def test_rejects_non_positive_length(self):
        with pytest.raises(ValueError):
            generate_trace(get_profile("ammp"), 0)

    def test_dependences_within_trace(self, ammp_trace):
        positions = np.arange(len(ammp_trace))
        assert (ammp_trace.src1 <= positions).all()
        assert (ammp_trace.src2 <= positions).all()
        assert (ammp_trace.src1 >= 0).all()

    def test_memory_ops_have_reuse_and_blocks(self, ammp_trace):
        is_mem = np.isin(ammp_trace.op, (OP_LOAD, OP_STORE))
        assert (ammp_trace.data_reuse[is_mem] >= 1).all()
        assert (ammp_trace.mem_block[is_mem] >= 0).all()
        assert (ammp_trace.data_reuse[~is_mem] == NO_DATA).all()
        assert (ammp_trace.mem_block[~is_mem] == -1).all()

    def test_mix_approximates_profile(self):
        profile = get_profile("gcc")
        trace = generate_trace(profile, 20000, seed=2)
        mix = trace.mix()
        for op_class, fraction in profile.mix.items():
            assert mix[op_class] == pytest.approx(fraction, abs=0.02)

    def test_branches_have_sites(self, ammp_trace):
        is_branch = ammp_trace.op == OP_BRANCH
        assert (ammp_trace.branch_site[is_branch] >= 0).all()
        assert (ammp_trace.branch_site[~is_branch] == -1).all()
        profile = get_profile("ammp")
        assert ammp_trace.branch_site.max() < profile.static_branches

    def test_fetch_events_present_and_first_instruction_fetches(self, ammp_trace):
        assert ammp_trace.instr_reuse[0] >= 0
        events = ammp_trace.instr_reuse != NO_FETCH
        # roughly every ifetch_run_mean instructions
        expected = len(ammp_trace) / get_profile("ammp").ifetch_run_mean
        assert events.sum() == pytest.approx(expected, rel=0.35)

    def test_ref_instructions_propagated(self, ammp_trace):
        assert ammp_trace.ref_instructions == get_profile("ammp").ref_instructions

    def test_all_suite_traces_generate(self):
        for name in BENCHMARK_NAMES:
            trace = generate_trace(get_profile(name), 800, seed=1)
            assert len(trace) == 800


class TestBranchBehaviour:
    def test_persistence_matches_bias(self):
        profile = get_profile("mesa")  # low unpredictable fraction
        trace = generate_trace(profile, 30000, seed=6)
        mask = trace.branch_site >= 0
        sites = trace.branch_site[mask].tolist()
        takens = trace.taken[mask].tolist()
        last = {}
        repeats = total = 0
        for site, taken in zip(sites, takens):
            if site in last:
                total += 1
                repeats += last[site] == taken
            last[site] = taken
        expected = (
            profile.unpredictable_rate * 0.5
            + (1 - profile.unpredictable_rate) * profile.branch_bias
        )
        assert repeats / total == pytest.approx(expected, abs=0.05)

    def test_pointer_chasing_serializes_loads(self):
        mcf = generate_trace(get_profile("mcf"), 20000, seed=2)
        loads = np.flatnonzero(mcf.op == OP_LOAD)
        gaps = np.diff(loads)
        chained = (mcf.src1[loads[1:]] == gaps).mean()
        # at least the chain rate must match exactly (short geometric
        # dependences can coincide with the previous load by chance, so the
        # measured fraction overshoots the configured rate)
        rate = get_profile("mcf").load_chain_rate
        assert rate - 0.02 <= chained <= rate + 0.25

    def test_low_chain_benchmark_has_fewer_load_chains(self):
        mcf = generate_trace(get_profile("mcf"), 20000, seed=2)
        mesa = generate_trace(get_profile("mesa"), 20000, seed=2)

        def chain_fraction(trace):
            loads = np.flatnonzero(trace.op == OP_LOAD)
            gaps = np.diff(loads)
            return (trace.src1[loads[1:]] == gaps).mean()

        assert chain_fraction(mcf) > chain_fraction(mesa) + 0.2


class TestReuseSampling:
    STRATA = ((0.7, 8), (0.3, 512))

    def test_distances_positive(self):
        rng = np.random.default_rng(0)
        distances = sample_reuse_distances(rng, self.STRATA, 5000)
        assert (distances >= 1).all()

    def test_distances_bounded_by_last_limit(self):
        rng = np.random.default_rng(0)
        distances = sample_reuse_distances(rng, self.STRATA, 5000)
        assert distances.max() <= 512

    def test_stratum_weights_respected(self):
        rng = np.random.default_rng(0)
        distances = sample_reuse_distances(rng, self.STRATA, 20000)
        assert (distances <= 8).mean() == pytest.approx(0.7, abs=0.02)

    def test_empty_draw(self):
        rng = np.random.default_rng(0)
        assert sample_reuse_distances(rng, self.STRATA, 0).size == 0

    def test_empirical_survival_matches_analytic(self):
        profile = get_profile("twolf")
        trace = generate_trace(profile, 40000, seed=8)
        reuse = trace.data_reuse[trace.data_reuse >= 0]
        for capacity in (64, 512, 4096):
            empirical = (reuse >= capacity).mean()
            analytic = profile.data_miss_rate(capacity)
            assert empirical == pytest.approx(analytic, abs=0.03)
