"""Tests for CMP scheduling and the Hungarian solver."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.studies import scheduling
from repro.studies.scheduling import SchedulingError, hungarian


def brute_force(cost: np.ndarray) -> float:
    n = cost.shape[0]
    return min(
        sum(cost[i, p[i]] for i in range(n))
        for p in itertools.permutations(range(n))
    )


class TestHungarian:
    def test_identity_case(self):
        cost = np.array([[1.0, 9.0], [9.0, 1.0]])
        pairs = dict(hungarian(cost))
        assert pairs == {0: 0, 1: 1}

    def test_crossed_case(self):
        cost = np.array([[9.0, 1.0], [1.0, 9.0]])
        pairs = dict(hungarian(cost))
        assert pairs == {0: 1, 1: 0}

    def test_assignment_is_permutation(self):
        rng = np.random.default_rng(0)
        cost = rng.random((6, 6))
        pairs = hungarian(cost)
        rows = [r for r, _ in pairs]
        cols = [c for _, c in pairs]
        assert sorted(rows) == list(range(6))
        assert sorted(cols) == list(range(6))

    def test_rejects_non_square(self):
        with pytest.raises(SchedulingError):
            hungarian(np.zeros((2, 3)))

    def test_rejects_non_finite(self):
        cost = np.array([[1.0, np.inf], [1.0, 1.0]])
        with pytest.raises(SchedulingError):
            hungarian(cost)

    @settings(max_examples=40, deadline=None)
    @given(st.integers(1, 5), st.integers(0, 2**31 - 1))
    def test_matches_brute_force(self, n, seed):
        cost = np.random.default_rng(seed).uniform(0, 100, (n, n))
        pairs = hungarian(cost)
        total = sum(cost[r, c] for r, c in pairs)
        assert total == pytest.approx(brute_force(cost), rel=1e-9)


class TestSchedule:
    def cores_for(self, ctx, count):
        points = ctx.exploration_points()
        return points[:count]

    def test_one_benchmark_per_core(self, ctx):
        benchmarks = list(ctx.benchmarks)[:4]
        result = scheduling.schedule(
            ctx, self.cores_for(ctx, 4), benchmarks, policy="optimal"
        )
        assert sorted(result.assignment.values()) == [0, 1, 2, 3]
        assert set(result.assignment) == set(benchmarks)

    def test_optimal_at_least_as_good_as_greedy_and_naive(self, ctx):
        benchmarks = list(ctx.benchmarks)[:5]
        cores = self.cores_for(ctx, 5)
        optimal = scheduling.schedule(ctx, cores, benchmarks, policy="optimal")
        greedy = scheduling.schedule(ctx, cores, benchmarks, policy="greedy")
        naive = scheduling.schedule(ctx, cores, benchmarks, policy="naive")
        assert optimal.total_log_efficiency >= greedy.total_log_efficiency - 1e-9
        assert optimal.total_log_efficiency >= naive.total_log_efficiency - 1e-9

    def test_mismatched_counts_rejected(self, ctx):
        with pytest.raises(SchedulingError):
            scheduling.schedule(ctx, self.cores_for(ctx, 3), ["gzip"], policy="naive")

    def test_unknown_policy_rejected(self, ctx):
        with pytest.raises(SchedulingError):
            scheduling.schedule(
                ctx, self.cores_for(ctx, 1), ["gzip"], policy="random"
            )

    def test_geomean_positive(self, ctx):
        result = scheduling.schedule(
            ctx, self.cores_for(ctx, 2), ["gzip", "mcf"], policy="optimal"
        )
        assert result.geomean_efficiency > 0
        assert result.total_power > 0


class TestCMPComparison:
    def test_heterogeneous_cmp_beats_or_ties_homogeneous(self, ctx):
        comparison = scheduling.compare_cmp_designs(ctx, core_types=4)
        assert comparison.heterogeneity_gain >= 0.95  # allow snap noise

    def test_optimal_scheduling_beats_or_ties_naive(self, ctx):
        comparison = scheduling.compare_cmp_designs(ctx, core_types=4)
        assert comparison.scheduling_gain >= 1.0 - 1e-9

    def test_core_counts_match_suite(self, ctx):
        comparison = scheduling.compare_cmp_designs(ctx, core_types=3)
        assert len(comparison.heterogeneous.cores) == len(ctx.benchmarks)
        assert len(comparison.homogeneous.cores) == len(ctx.benchmarks)
