"""Unit tests for design parameters."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.designspace import Parameter, ParameterError, linear_range, pow2_range
from repro.designspace.parameters import validate_unique_names


class TestRanges:
    def test_linear_range_paper_notation(self):
        assert linear_range(9, 3, 36) == (9, 12, 15, 18, 21, 24, 27, 30, 33, 36)

    def test_linear_range_single_value(self):
        assert linear_range(5, 1, 5) == (5,)

    def test_linear_range_float_step(self):
        assert linear_range(0.5, 0.5, 2.0) == (0.5, 1.0, 1.5, 2.0)

    def test_linear_range_rejects_negative_step(self):
        with pytest.raises(ParameterError):
            linear_range(1, -1, 5)

    def test_linear_range_rejects_zero_step(self):
        with pytest.raises(ParameterError):
            linear_range(1, 0, 5)

    def test_linear_range_rejects_backwards(self):
        with pytest.raises(ParameterError):
            linear_range(10, 1, 5)

    def test_pow2_range_paper_notation(self):
        assert pow2_range(16, 256) == (16, 32, 64, 128, 256)

    def test_pow2_range_fractional_start(self):
        assert pow2_range(0.25, 4) == (0.25, 0.5, 1.0, 2.0, 4.0)

    def test_pow2_range_rejects_non_positive(self):
        with pytest.raises(ParameterError):
            pow2_range(0, 8)

    def test_pow2_range_rejects_backwards(self):
        with pytest.raises(ParameterError):
            pow2_range(8, 4)

    @given(st.integers(1, 100), st.integers(1, 10), st.integers(0, 50))
    def test_linear_range_is_inclusive_arithmetic(self, start, step, count):
        stop = start + step * count
        values = linear_range(start, step, stop)
        assert len(values) == count + 1
        assert values[0] == start
        assert values[-1] == stop


class TestParameter:
    def make(self, **overrides):
        kwargs = dict(name="depth", values=(9, 12, 15), unit="FO4", group="S1")
        kwargs.update(overrides)
        return Parameter(**kwargs)

    def test_cardinality(self):
        assert self.make().cardinality == 3

    def test_index_of_known_value(self):
        assert self.make().index_of(12) == 1

    def test_index_of_unknown_value_raises_with_levels(self):
        with pytest.raises(ParameterError, match="levels"):
            self.make().index_of(13)

    def test_rejects_empty_name(self):
        with pytest.raises(ParameterError):
            self.make(name="")

    def test_rejects_empty_values(self):
        with pytest.raises(ParameterError):
            self.make(values=())

    def test_rejects_duplicate_values(self):
        with pytest.raises(ParameterError):
            self.make(values=(9, 9, 12))

    def test_rejects_unsorted_values(self):
        with pytest.raises(ParameterError):
            self.make(values=(12, 9, 15))

    def test_rejects_mismatched_derived_length(self):
        with pytest.raises(ParameterError, match="derived"):
            self.make(derived={"other": (1, 2)})

    def test_settings_at_includes_primary_and_derived(self):
        parameter = self.make(derived={"fpr": (40, 48, 56)})
        assert parameter.settings_at(12) == {"depth": 12, "fpr": 48}

    def test_encode_identity_by_default(self):
        assert self.make().encode(12) == 12.0

    def test_encode_log2(self):
        parameter = Parameter(name="w", values=(2, 4, 8), log2_encode=True)
        assert parameter.encode(8) == pytest.approx(3.0)

    def test_log2_rejects_non_positive_values(self):
        with pytest.raises(ParameterError):
            Parameter(name="bad", values=(0, 1), log2_encode=True)

    def test_decode_round_trips_every_level(self):
        parameter = Parameter(name="w", values=(2, 4, 8), log2_encode=True)
        for value in parameter.values:
            assert parameter.decode(parameter.encode(value)) == value

    def test_decode_snaps_to_nearest(self):
        parameter = self.make()
        assert parameter.decode(10.4) == 9
        assert parameter.decode(10.6) == 12

    def test_nearest_on_raw_scale(self):
        assert self.make().nearest(13.2) == 12

    def test_span(self):
        low, high = self.make().span()
        assert (low, high) == (9.0, 15.0)

    def test_span_log2(self):
        parameter = Parameter(name="w", values=(2, 8), log2_encode=True)
        assert parameter.span() == (1.0, 3.0)

    @given(st.floats(-100, 100))
    def test_nearest_always_returns_a_level(self, raw):
        parameter = self.make()
        assert parameter.nearest(raw) in parameter.values


class TestUniqueNames:
    def test_accepts_distinct(self):
        a = Parameter(name="a", values=(1,))
        b = Parameter(name="b", values=(1,))
        validate_unique_names([a, b])  # no exception

    def test_rejects_duplicate_primary(self):
        a = Parameter(name="a", values=(1,))
        with pytest.raises(ParameterError):
            validate_unique_names([a, Parameter(name="a", values=(2,))])

    def test_rejects_derived_collision(self):
        a = Parameter(name="a", values=(1,), derived={"c": (10,)})
        b = Parameter(name="b", values=(1,), derived={"c": (20,)})
        with pytest.raises(ParameterError, match="c"):
            validate_unique_names([a, b])
