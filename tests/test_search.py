"""Tests for regression-guided heuristic search."""

import numpy as np
import pytest

from repro.designspace import DesignSpace, Parameter
from repro.studies import search


@pytest.fixture(scope="module")
def toy_space():
    return DesignSpace(
        [
            Parameter(name="x", values=tuple(range(0, 11))),
            Parameter(name="y", values=tuple(range(0, 11))),
        ]
    )


def quadratic_objective(points):
    """Peak at (7, 3)."""
    return np.array(
        [-((p["x"] - 7) ** 2) - (p["y"] - 3) ** 2 for p in points], dtype=float
    )


class TestNeighbors:
    def test_interior_point_has_four(self, toy_space):
        point = toy_space.point(x=5, y=5)
        assert len(search._neighbors(toy_space, point)) == 4

    def test_corner_point_has_two(self, toy_space):
        point = toy_space.point(x=0, y=0)
        assert len(search._neighbors(toy_space, point)) == 2

    def test_neighbors_one_step_away(self, toy_space):
        point = toy_space.point(x=5, y=5)
        for neighbor in search._neighbors(toy_space, point):
            difference = sum(
                abs(neighbor[n] - point[n]) for n in point.names
            )
            assert difference == 1


class TestSteepestDescent:
    def test_finds_global_optimum_of_convex_objective(self, toy_space):
        result = search.steepest_descent(
            toy_space, quadratic_objective, start=toy_space.point(x=0, y=10)
        )
        assert result.best_point.as_dict() == {"x": 7, "y": 3}
        assert result.best_value == 0.0

    def test_trajectory_is_monotone(self, toy_space):
        result = search.steepest_descent(
            toy_space, quadratic_objective, start=toy_space.point(x=0, y=0)
        )
        assert result.trajectory == sorted(result.trajectory)

    def test_evaluation_count_is_tracked(self, toy_space):
        result = search.steepest_descent(
            toy_space, quadratic_objective, start=toy_space.point(x=6, y=3)
        )
        assert result.evaluations >= 1
        assert result.evaluations < len(toy_space)

    def test_stops_at_start_if_optimal(self, toy_space):
        result = search.steepest_descent(
            toy_space, quadratic_objective, start=toy_space.point(x=7, y=3)
        )
        assert result.best_point.as_dict() == {"x": 7, "y": 3}


class TestGenetic:
    def test_finds_near_optimum(self, toy_space):
        result = search.genetic_search(
            toy_space, quadratic_objective, population=20, generations=15, seed=1
        )
        assert result.best_value >= -2.0

    def test_deterministic_with_seed(self, toy_space):
        a = search.genetic_search(toy_space, quadratic_objective, seed=3)
        b = search.genetic_search(toy_space, quadratic_objective, seed=3)
        assert a.best_value == b.best_value
        assert a.best_point == b.best_point

    def test_rejects_odd_population(self, toy_space):
        with pytest.raises(ValueError):
            search.genetic_search(toy_space, quadratic_objective, population=7)

    def test_trajectory_monotone_best_so_far(self, toy_space):
        result = search.genetic_search(toy_space, quadratic_objective, seed=2)
        assert result.trajectory == sorted(result.trajectory)


class TestComparison:
    def test_compare_on_real_models(self, ctx):
        comparison = search.compare_search_strategies(ctx, "gzip")
        assert comparison.exhaustive_evaluations == ctx.scale.exploration_limit
        assert comparison.descent.evaluations < comparison.exhaustive_evaluations
        # heuristics on the *models* should reach most of the exhaustive
        # predicted optimum (descent may stop in a local optimum)
        assert comparison.descent_quality > 0.5
        assert comparison.genetic_quality > 0.5

    def test_objective_matches_prediction(self, ctx):
        objective = search.efficiency_objective(ctx, "gzip")
        point = ctx.baseline
        table = ctx.predict_points("gzip", [point])
        assert objective([point])[0] == pytest.approx(float(table.efficiency[0]))
