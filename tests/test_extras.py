"""Tests for the supplementary workload suite."""

import pytest

from repro.regression import fit_ols, performance_spec, power_spec
from repro.simulator import Simulator, baseline_config
from repro.workloads import (
    EXTRA_SUITE,
    SUITE,
    generate_trace,
    get_extra_profile,
    validate_trace,
)


class TestExtraSuite:
    def test_four_profiles(self):
        assert set(EXTRA_SUITE) == {"art", "swim", "vpr", "crafty"}

    def test_disjoint_from_main_suite(self):
        assert not set(EXTRA_SUITE) & set(SUITE)

    def test_get_extra_profile_unknown(self):
        with pytest.raises(KeyError, match="art"):
            get_extra_profile("doom")

    @pytest.mark.parametrize("bench_name", sorted(EXTRA_SUITE))
    def test_traces_conform_to_profiles(self, bench_name):
        profile = get_extra_profile(bench_name)
        trace = generate_trace(profile, 15000, seed=6)
        report = validate_trace(trace, profile)
        assert report.passed, "\n".join(str(c) for c in report.failures())

    @pytest.mark.parametrize("bench_name", sorted(EXTRA_SUITE))
    def test_simulate_on_baseline(self, bench_name):
        trace = generate_trace(get_extra_profile(bench_name), 2000, seed=6)
        result = Simulator().simulate(trace, baseline_config())
        assert result.bips > 0
        assert result.watts > 5


class TestCharacters:
    def simulate(self, name, **overrides):
        trace = generate_trace(get_extra_profile(name), 3000, seed=6)
        config = baseline_config().with_overrides(**overrides)
        return Simulator().simulate(trace, config)

    def test_swim_is_l2_insensitive(self):
        small = self.simulate("swim", l2_mb=0.25)
        large = self.simulate("swim", l2_mb=4.0)
        assert large.bips / small.bips < 1.15  # streaming: L2 barely helps

    def test_vpr_is_l2_sensitive(self):
        small = self.simulate("vpr", l2_mb=0.25)
        large = self.simulate("vpr", l2_mb=4.0)
        assert large.bips / small.bips > 1.1

    def test_crafty_is_cache_resident(self):
        result = self.simulate("crafty")
        assert result.counts.memory_accesses / result.instructions < 0.01

    def test_art_is_memory_hungry(self):
        result = self.simulate("art")
        assert result.counts.memory_accesses / result.instructions > 0.05


class TestModeling:
    def test_regression_generalizes_to_extras(self, ctx):
        """Section 2.2's claim: the framework applies to other workloads."""
        import numpy as np

        from repro.designspace import DesignEncoder, sample_uar
        from repro.regression import prediction_errors

        space = ctx.sampling_space
        simulator = ctx.simulator
        trace = simulator.trace_for(get_extra_profile("vpr"), 1500, seed=7)
        points = sample_uar(space, 90, seed=7)
        results = [simulator.simulate_point(space, p, trace) for p in points]
        encoder = DesignEncoder(space)
        matrix = encoder.encode(points)
        data = {n: matrix[:, j] for j, n in enumerate(encoder.feature_names)}
        data["bips"] = np.array([r.bips for r in results])
        data["watts"] = np.array([r.watts for r in results])

        train = {k: v[:-15] for k, v in data.items()}
        test = {k: v[-15:] for k, v in data.items()}
        perf = fit_ols(performance_spec(), train)
        power = fit_ols(power_spec(), train)
        perf_errors = prediction_errors(test["bips"], perf.predict(test))
        power_errors = prediction_errors(test["watts"], power.predict(test))
        assert np.median(perf_errors) < 0.15
        assert np.median(power_errors) < 0.12
