"""Tests for the functional set-associative cache model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.simulator import Cache, CacheConfigError, CacheHierarchy, build_hierarchy
from repro.simulator.caches import INSTRUCTION_SPACE_OFFSET


class TestGeometry:
    def test_sets_from_size_and_assoc(self):
        cache = Cache("l1", size_kb=8, assoc=2)
        assert cache.n_sets == 8 * 1024 // 128 // 2

    def test_rejects_non_positive_size(self):
        with pytest.raises(CacheConfigError):
            Cache("bad", size_kb=0, assoc=1)

    def test_rejects_zero_assoc(self):
        with pytest.raises(CacheConfigError):
            Cache("bad", size_kb=8, assoc=0)

    def test_rejects_assoc_larger_than_capacity(self):
        with pytest.raises(CacheConfigError):
            Cache("bad", size_kb=0.125, assoc=2)  # one block total


class TestAccessSemantics:
    def test_first_access_misses(self):
        cache = Cache("l1", size_kb=8, assoc=2)
        assert cache.access(0) is False

    def test_second_access_hits(self):
        cache = Cache("l1", size_kb=8, assoc=2)
        cache.access(0)
        assert cache.access(0) is True

    def test_lru_eviction_order(self):
        cache = Cache("tiny", size_kb=0.25, assoc=2)  # 2 blocks, 1 set
        cache.access(0)
        cache.access(1)
        cache.access(0)      # refresh 0: LRU order is now [1, 0]
        cache.access(2)      # evicts 1
        assert cache.probe(0)
        assert not cache.probe(1)
        assert cache.probe(2)

    def test_conflict_misses_in_direct_mapped(self):
        cache = Cache("dm", size_kb=0.25, assoc=1)  # 2 sets of 1 block
        cache.access(0)
        cache.access(2)      # same set (2 % 2 == 0), evicts 0
        assert not cache.probe(0)

    def test_stats_consistency(self):
        cache = Cache("l1", size_kb=8, assoc=2)
        for block in (0, 1, 0, 2, 0):
            cache.access(block)
        stats = cache.stats
        assert stats.accesses == 5
        assert stats.hits + stats.misses == stats.accesses
        assert stats.hits == 2

    def test_miss_rate(self):
        cache = Cache("l1", size_kb=8, assoc=2)
        cache.access(0)
        cache.access(0)
        assert cache.stats.miss_rate == 0.5

    def test_miss_rate_empty(self):
        assert Cache("l1", size_kb=8, assoc=2).stats.miss_rate == 0.0

    def test_reset(self):
        cache = Cache("l1", size_kb=8, assoc=2)
        cache.access(0)
        cache.reset()
        assert cache.stats.accesses == 0
        assert not cache.probe(0)

    def test_probe_does_not_count_or_touch(self):
        cache = Cache("tiny", size_kb=0.25, assoc=2)
        cache.access(0)
        cache.access(1)
        cache.probe(0)       # must not refresh 0's LRU position
        cache.access(2)      # evicts 0 (the true LRU block)
        assert not cache.probe(0)
        assert cache.stats.accesses == 3

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(0, 500), min_size=1, max_size=300))
    def test_occupancy_never_exceeds_capacity(self, blocks):
        cache = Cache("l1", size_kb=1, assoc=2)
        for block in blocks:
            cache.access(block)
        assert len(cache.contents()) <= 1024 // 128
        for ways in cache._sets:
            assert len(ways) <= cache.assoc

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(0, 50), min_size=1, max_size=200))
    def test_bigger_cache_never_hits_less(self, blocks):
        small = Cache("s", size_kb=0.5, assoc=2)
        large = Cache("l", size_kb=4, assoc=4)
        small_hits = sum(small.access(b) for b in blocks)
        large_hits = sum(large.access(b) for b in blocks)
        assert large_hits >= small_hits


class TestHierarchy:
    def test_build_hierarchy_baseline_assocs(self):
        hierarchy = build_hierarchy(64, 32, 2.0)
        assert hierarchy.il1.assoc == 1
        assert hierarchy.dl1.assoc == 2
        assert hierarchy.l2.assoc == 4

    def test_data_miss_fills_l2(self):
        hierarchy = build_hierarchy(16, 8, 0.25)
        assert hierarchy.data_access(1) == "mem"
        assert hierarchy.data_access(1) == "l1"
        hierarchy.dl1.reset()
        assert hierarchy.data_access(1) == "l2"

    def test_instruction_blocks_do_not_alias_data_blocks(self):
        hierarchy = build_hierarchy(16, 8, 0.25)
        hierarchy.data_access(5)
        assert hierarchy.instruction_access(5) == "mem"
        assert hierarchy.l2.probe(5)
        assert hierarchy.l2.probe(5 + INSTRUCTION_SPACE_OFFSET)

    def test_memory_access_count(self):
        hierarchy = build_hierarchy(16, 8, 0.25)
        hierarchy.data_access(1)
        hierarchy.data_access(2)
        hierarchy.data_access(1)
        assert hierarchy.stats().memory_accesses == 2

    def test_reset_clears_everything(self):
        hierarchy = build_hierarchy(16, 8, 0.25)
        hierarchy.data_access(1)
        hierarchy.instruction_access(1)
        hierarchy.reset()
        stats = hierarchy.stats()
        assert stats.il1.accesses == 0
        assert stats.dl1.accesses == 0
        assert stats.l2.accesses == 0
        assert stats.memory_accesses == 0
