"""Tests for error metrics and boxplot statistics."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.regression import (
    LinearTerm,
    ModelSpec,
    ValidationError,
    boxplot_stats,
    error_table,
    fit_ols,
    overall_median,
    prediction_errors,
    validate_model,
)


class TestPredictionErrors:
    def test_paper_formula(self):
        errors = prediction_errors(np.array([11.0]), np.array([10.0]))
        assert errors[0] == pytest.approx(0.1)

    def test_symmetric_in_magnitude(self):
        errors = prediction_errors(np.array([9.0, 11.0]), np.array([10.0, 10.0]))
        assert errors[0] == errors[1] == pytest.approx(0.1)

    def test_rejects_zero_prediction(self):
        with pytest.raises(ValidationError):
            prediction_errors(np.array([1.0]), np.array([0.0]))

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValidationError):
            prediction_errors(np.array([1.0]), np.array([1.0, 2.0]))

    def test_rejects_empty(self):
        with pytest.raises(ValidationError):
            prediction_errors(np.array([]), np.array([]))


class TestBoxplotStats:
    def test_median_and_quartiles(self):
        stats = boxplot_stats(np.arange(1.0, 101.0))
        assert stats.median == pytest.approx(50.5)
        assert stats.q1 == pytest.approx(25.75)
        assert stats.q3 == pytest.approx(75.25)

    def test_no_outliers_in_uniform(self):
        assert boxplot_stats(np.arange(100.0)).outliers == ()

    def test_whiskers_at_extremes_without_outliers(self):
        stats = boxplot_stats(np.arange(100.0))
        assert stats.whisker_low == 0.0
        assert stats.whisker_high == 99.0

    def test_detects_outlier(self):
        values = list(np.arange(20.0)) + [1000.0]
        stats = boxplot_stats(values)
        assert stats.outliers == (1000.0,)
        assert stats.whisker_high == 19.0

    def test_paper_whisker_rule(self):
        # whisker = most extreme point within 1.5 IQR of the quartile
        values = [1.0, 2.0, 3.0, 4.0, 5.0, 11.0]
        stats = boxplot_stats(values)
        assert stats.iqr == pytest.approx(stats.q3 - stats.q1)
        assert stats.whisker_high <= stats.q3 + 1.5 * stats.iqr

    def test_single_value(self):
        stats = boxplot_stats([5.0])
        assert stats.median == 5.0
        assert stats.n == 1

    def test_rejects_empty(self):
        with pytest.raises(ValidationError):
            boxplot_stats([])

    @given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=200))
    def test_invariants(self, values):
        stats = boxplot_stats(values)
        assert stats.q1 <= stats.median <= stats.q3
        # whiskers stay inside the data range (they sit *at* data points
        # unless everything on that side is an outlier)
        assert min(values) <= stats.whisker_low <= max(values)
        assert min(values) <= stats.whisker_high <= max(values)
        assert stats.n == len(values)
        # every outlier lies beyond the 1.5-IQR band
        for outlier in stats.outliers:
            low, high = stats.q1 - 1.5 * stats.iqr, stats.q3 + 1.5 * stats.iqr
            assert outlier < low or outlier > high


class TestModelValidation:
    def make_model_and_data(self):
        rng = np.random.default_rng(0)
        x = rng.uniform(1, 10, 200)
        y = 5.0 + 2.0 * x + 0.1 * rng.standard_normal(200)
        train = {"x": x, "y": y}
        model = fit_ols(ModelSpec("y", (LinearTerm("x"),)), train)
        x_val = rng.uniform(1, 10, 40)
        validation = {"x": x_val, "y": 5.0 + 2.0 * x_val}
        return model, validation

    def test_validate_model_small_errors(self):
        model, validation = self.make_model_and_data()
        summary = validate_model(model, validation, "toy")
        assert summary.median_percent < 2.0
        assert summary.benchmark == "toy"
        assert summary.metric == "y"

    def test_error_table_contains_overall(self):
        model, validation = self.make_model_and_data()
        summary = validate_model(model, validation, "toy")
        table = error_table([summary])
        assert set(table) == {"toy", "overall"}

    def test_overall_median_pools(self):
        model, validation = self.make_model_and_data()
        a = validate_model(model, validation, "a")
        b = validate_model(model, validation, "b")
        pooled = overall_median([a, b])
        assert pooled == pytest.approx(np.median(np.concatenate([a.errors, b.errors])))

    def test_overall_median_empty(self):
        with pytest.raises(ValidationError):
            overall_median([])
