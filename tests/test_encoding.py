"""Tests for design point encoders."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.designspace import (
    DesignEncoder,
    DesignPoint,
    DesignSpace,
    NormalizedEncoder,
    Parameter,
    ParameterError,
    exploration_space,
    sample_uar,
)


@pytest.fixture(scope="module")
def space():
    return DesignSpace(
        [
            Parameter(name="depth", values=(12, 18, 24)),
            Parameter(name="width", values=(2, 4, 8), log2_encode=True),
            Parameter(name="l2", values=(0.25, 1.0, 4.0), log2_encode=True),
        ]
    )


class TestDesignEncoder:
    def test_encode_point_shape_and_values(self, space):
        encoder = DesignEncoder(space)
        vector = encoder.encode_point(space.point(depth=18, width=8, l2=1.0))
        assert vector.tolist() == [18.0, 3.0, 0.0]

    def test_encode_many(self, space):
        encoder = DesignEncoder(space)
        matrix = encoder.encode([space.point_at(0), space.point_at(5)])
        assert matrix.shape == (2, 3)

    def test_encode_empty(self, space):
        assert DesignEncoder(space).encode([]).shape == (0, 3)

    def test_rejects_foreign_point(self, space):
        with pytest.raises(ParameterError):
            DesignEncoder(space).encode_point(DesignPoint(("depth",), (12,)))

    def test_decode_round_trip(self, space):
        encoder = DesignEncoder(space)
        for point in space:
            assert encoder.decode_vector(encoder.encode_point(point)) == point

    def test_decode_snaps(self, space):
        encoder = DesignEncoder(space)
        point = encoder.decode_vector([17.0, 2.9, -1.9])
        assert point["depth"] == 18
        assert point["width"] == 8
        assert point["l2"] == 0.25

    def test_decode_wrong_length(self, space):
        with pytest.raises(ParameterError):
            DesignEncoder(space).decode_vector([1.0, 2.0])

    def test_feature_names_in_parameter_order(self, space):
        assert DesignEncoder(space).feature_names == ["depth", "width", "l2"]


class TestNormalizedEncoder:
    def test_unit_interval(self, space):
        encoder = NormalizedEncoder(space)
        for point in space:
            vector = encoder.encode_point(point)
            assert (vector >= 0).all() and (vector <= 1).all()

    def test_extremes_map_to_0_and_1(self, space):
        encoder = NormalizedEncoder(space)
        low = encoder.encode_point(space.point(depth=12, width=2, l2=0.25))
        high = encoder.encode_point(space.point(depth=24, width=8, l2=4.0))
        assert low.tolist() == [0.0, 0.0, 0.0]
        assert high.tolist() == [1.0, 1.0, 1.0]

    def test_log2_midpoint(self, space):
        encoder = NormalizedEncoder(space)
        vector = encoder.encode_point(space.point(depth=12, width=4, l2=1.0))
        assert vector[1] == pytest.approx(0.5)
        assert vector[2] == pytest.approx(0.5)

    def test_weights_scale_coordinates(self, space):
        encoder = NormalizedEncoder(space, weights={"depth": 2.0})
        vector = encoder.encode_point(space.point(depth=24, width=2, l2=0.25))
        assert vector[0] == pytest.approx(2.0)

    def test_zero_weight_removes_dimension(self, space):
        encoder = NormalizedEncoder(space, weights={"width": 0.0})
        a = encoder.encode_point(space.point(depth=12, width=2, l2=0.25))
        b = encoder.encode_point(space.point(depth=12, width=8, l2=0.25))
        assert np.allclose(a, b)

    def test_unknown_weight_rejected(self, space):
        with pytest.raises(ParameterError):
            NormalizedEncoder(space, weights={"bogus": 1.0})

    def test_negative_weight_rejected(self, space):
        with pytest.raises(ParameterError):
            NormalizedEncoder(space, weights={"depth": -1.0})

    def test_decode_round_trip(self, space):
        encoder = NormalizedEncoder(space)
        for point in space:
            assert encoder.decode_vector(encoder.encode_point(point)) == point

    def test_pinned_parameter_encodes_as_zero(self, space):
        pinned = space.fix(width=4)
        encoder = NormalizedEncoder(pinned)
        vector = encoder.encode_point(pinned.point(depth=12, width=4, l2=0.25))
        assert vector[1] == 0.0

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 2**31 - 1))
    def test_round_trip_on_paper_space(self, seed):
        space = exploration_space()
        encoder = NormalizedEncoder(space)
        for point in sample_uar(space, 3, seed=seed):
            assert encoder.decode_vector(encoder.encode_point(point)) == point
