"""Tests for correlation, variable clustering and residual analysis."""

import numpy as np
import pytest

from repro.regression import (
    LinearTerm,
    ModelSpec,
    correlation_matrix,
    fit_ols,
    pearson,
    rank_data,
    residual_analysis,
    spearman,
    variable_clustering,
)


class TestRanks:
    def test_simple_ranks(self):
        assert rank_data(np.array([30.0, 10.0, 20.0])).tolist() == [3.0, 1.0, 2.0]

    def test_tied_midranks(self):
        ranks = rank_data(np.array([1.0, 2.0, 2.0, 3.0]))
        assert ranks.tolist() == [1.0, 2.5, 2.5, 4.0]

    def test_all_tied(self):
        assert rank_data(np.full(4, 7.0)).tolist() == [2.5] * 4


class TestCorrelation:
    def test_pearson_perfect(self):
        x = np.arange(10.0)
        assert pearson(x, 2 * x + 1) == pytest.approx(1.0)
        assert pearson(x, -x) == pytest.approx(-1.0)

    def test_pearson_constant_is_zero(self):
        assert pearson(np.ones(5), np.arange(5.0)) == 0.0

    def test_pearson_length_mismatch(self):
        with pytest.raises(ValueError):
            pearson(np.arange(3.0), np.arange(4.0))

    def test_spearman_monotone_nonlinear(self):
        x = np.arange(1.0, 20.0)
        assert spearman(x, np.exp(x / 5)) == pytest.approx(1.0)

    def test_spearman_vs_pearson_on_outlier(self):
        x = np.arange(20.0)
        y = x.copy()
        y[-1] = 1000.0
        assert spearman(x, y) == pytest.approx(1.0)
        assert pearson(x, y) < 1.0

    def test_correlation_matrix_symmetric_unit_diagonal(self):
        rng = np.random.default_rng(0)
        data = {"a": rng.random(50), "b": rng.random(50), "c": rng.random(50)}
        matrix = correlation_matrix(data, ["a", "b", "c"])
        assert np.allclose(matrix, matrix.T)
        assert np.allclose(np.diag(matrix), 1.0)


class TestVariableClustering:
    def test_duplicated_variable_clusters_together(self):
        rng = np.random.default_rng(1)
        a = rng.random(100)
        data = {"a": a, "a_copy": a + 1e-3 * rng.random(100), "b": rng.random(100)}
        clusters = variable_clustering(data, ["a", "a_copy", "b"], threshold=0.5)
        grouped = [c.members for c in clusters if len(c.members) > 1]
        assert ("a", "a_copy") in grouped

    def test_independent_variables_stay_apart(self):
        rng = np.random.default_rng(2)
        data = {k: rng.random(100) for k in ("a", "b", "c")}
        clusters = variable_clustering(data, ["a", "b", "c"], threshold=0.5)
        assert all(len(c.members) == 1 for c in clusters)

    def test_zero_threshold_merges_everything(self):
        rng = np.random.default_rng(3)
        data = {k: rng.random(30) for k in ("a", "b", "c")}
        clusters = variable_clustering(data, ["a", "b", "c"], threshold=0.0)
        assert len(clusters) == 1
        assert set(clusters[0].members) == {"a", "b", "c"}


class TestResidualAnalysis:
    def test_residuals_center_on_zero(self):
        rng = np.random.default_rng(4)
        x = rng.uniform(0, 10, 300)
        data = {"x": x, "y": 2 * x + rng.standard_normal(300)}
        model = fit_ols(ModelSpec("y", (LinearTerm("x"),)), data)
        summary = residual_analysis(model, data)
        assert summary.mean == pytest.approx(0.0, abs=1e-9)
        assert summary.std > 0

    def test_standardized_residuals_unit_scale(self):
        rng = np.random.default_rng(5)
        x = rng.uniform(0, 10, 500)
        data = {"x": x, "y": x + rng.standard_normal(500)}
        model = fit_ols(ModelSpec("y", (LinearTerm("x"),)), data)
        summary = residual_analysis(model, data)
        assert summary.standardized.std(ddof=1) == pytest.approx(1.0, rel=1e-6)

    def test_detects_unmodeled_curvature(self):
        rng = np.random.default_rng(6)
        x = np.sort(rng.uniform(-3, 3, 400))
        data = {"x": x, "y": x**2}
        model = fit_ols(ModelSpec("y", (LinearTerm("x"),)), data)
        summary = residual_analysis(model, data)
        # residuals of a line fit to a parabola correlate strongly with |x|;
        # the analysis reports correlation against x itself, so instead check
        # the standardized residual range is pathological
        assert summary.max_abs_standardized > 1.5

    def test_per_predictor_correlation_keys(self):
        rng = np.random.default_rng(7)
        data = {
            "x": rng.random(100),
            "z": rng.random(100),
            "y": rng.random(100),
        }
        model = fit_ols(ModelSpec("y", (LinearTerm("x"), LinearTerm("z"))), data)
        summary = residual_analysis(model, data)
        assert set(summary.per_predictor_correlation) == {"x", "z"}
