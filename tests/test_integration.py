"""Cross-module integration tests.

These exercise the whole toolchain end-to-end at test scale and pin the
reproduction's headline properties: model accuracy in the paper's band,
frontier-error consistency, benchmark-character preservation, and
agreement between the two memory models where they should agree.
"""

import numpy as np
import pytest

from repro.regression import error_table, validate_model
from repro.simulator import Simulator, baseline_config
from repro.studies import heterogeneity, pareto
from repro.workloads import generate_trace, get_profile


class TestModelAccuracy:
    def test_validation_errors_in_paper_band(self, ctx):
        """Figure 1's headline: single-digit-ish median errors."""
        perf, power = [], []
        for benchmark in ctx.benchmarks:
            data = ctx.campaign.dataset(benchmark, "validation").columns()
            perf.append(validate_model(ctx.model(benchmark, "bips"), data, benchmark))
            power.append(validate_model(ctx.model(benchmark, "watts"), data, benchmark))
        perf_overall = error_table(perf)["overall"]
        power_overall = error_table(power)["overall"]
        # paper: 7.2% / 5.4%; generous ceiling for the tiny test scale
        assert perf_overall < 15.0
        assert power_overall < 12.0

    def test_power_model_more_accurate_than_performance(self, ctx):
        """The paper's consistent observation across Figures 1 and 4."""
        perf, power = [], []
        for benchmark in ctx.benchmarks:
            data = ctx.campaign.dataset(benchmark, "validation").columns()
            perf.append(validate_model(ctx.model(benchmark, "bips"), data, benchmark))
            power.append(validate_model(ctx.model(benchmark, "watts"), data, benchmark))
        assert error_table(power)["overall"] < error_table(perf)["overall"] + 2.0

    def test_frontier_errors_consistent_with_random_validation(self, ctx):
        """Section 4.3: pareto optima are no less predictable."""
        validation = pareto.validate_frontier(ctx, "ammp")
        # loose factor: tiny validation sets at test scale
        assert validation.power_errors.stats.median < 0.25


class TestBenchmarkCharacter:
    def test_mcf_optimum_has_largest_l2(self, ctx):
        optima = heterogeneity.benchmark_optima(ctx)
        l2 = {name: row.point["l2_mb"] for name, row in optima.items()}
        assert l2["mcf"] >= max(l2["gzip"], l2["applu"])

    def test_mcf_is_slowest_per_instruction(self, ctx):
        optima = heterogeneity.benchmark_optima(ctx)
        bips = {name: row.predicted_bips for name, row in optima.items()}
        assert bips["mcf"] == min(bips.values())

    def test_optima_are_diverse(self, ctx):
        """Table 2's point: optima come from diverse regions of the space."""
        optima = heterogeneity.benchmark_optima(ctx)
        depths = {row.point["depth"] for row in optima.values()}
        l2s = {row.point["l2_mb"] for row in optima.values()}
        assert len(depths) >= 2
        assert len(l2s) >= 2


class TestMemoryModelAgreement:
    def test_stack_and_functional_agree_on_small_footprint(self):
        """For gzip (footprint << caches) both models should roughly agree
        on miss counts after warmup, since steady state is reached."""
        trace = generate_trace(get_profile("gzip"), 4000, seed=7)
        config = baseline_config()
        stack = Simulator(memory_mode="stack").simulate(trace, config)
        functional = Simulator(memory_mode="functional").simulate(trace, config)
        # gzip's defining signature: its ~192KB working set is L2-resident,
        # so neither model sends data traffic to memory
        instructions = len(trace)
        assert stack.counts.memory_accesses / instructions < 0.01
        assert functional.counts.memory_accesses / instructions < 0.01
        # and both land in the same performance regime (the two streams are
        # parameterized independently, so only coarse agreement is expected)
        assert functional.bips == pytest.approx(stack.bips, rel=0.5)


class TestDeterminism:
    def test_full_pipeline_reproducible(self, ctx):
        table_a = ctx.predict_points("gzip", [ctx.baseline])
        table_b = ctx.predict_points("gzip", [ctx.baseline])
        assert table_a.bips[0] == table_b.bips[0]

    def test_simulation_reproducible(self, ctx):
        a = ctx.simulate("gzip", ctx.baseline)
        b = ctx.simulate("gzip", ctx.baseline)
        assert a.cycles == b.cycles
        assert a.watts == pytest.approx(b.watts)


class TestExtensionParameters:
    def test_in_order_machines_simulate(self):
        trace = generate_trace(get_profile("gzip"), 1200, seed=3)
        ooo = Simulator().simulate(trace, baseline_config())
        ino = Simulator().simulate(
            trace, baseline_config().with_overrides(in_order=True)
        )
        assert ino.bips < ooo.bips

    def test_higher_associativity_helps_functional_model(self):
        trace = generate_trace(get_profile("twolf"), 4000, seed=3)
        direct = Simulator(memory_mode="functional").simulate(
            trace, baseline_config().with_overrides(dl1_assoc=1)
        )
        eight_way = Simulator(memory_mode="functional").simulate(
            trace, baseline_config().with_overrides(dl1_assoc=8)
        )
        assert eight_way.counts.dl1_misses <= direct.counts.dl1_misses
