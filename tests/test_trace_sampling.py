"""Tests for SMARTS-style trace sampling."""

import numpy as np
import pytest

from repro.simulator import baseline_config
from repro.workloads import (
    TraceSamplingError,
    generate_trace,
    get_profile,
    systematic_sample,
    validate_sampling,
)


@pytest.fixture(scope="module")
def long_trace():
    return generate_trace(get_profile("gzip"), 20000, seed=8)


class TestSystematicSample:
    def test_length(self, long_trace):
        sampled = systematic_sample(long_trace, segments=10, segment_length=200)
        assert len(sampled) == 2000

    def test_valid_trace(self, long_trace):
        # Trace's own validation runs in its constructor; just build it
        sampled = systematic_sample(long_trace, segments=5, segment_length=100)
        assert sampled.name == long_trace.name
        assert sampled.ref_instructions == long_trace.ref_instructions

    def test_metadata_records_provenance(self, long_trace):
        sampled = systematic_sample(long_trace, segments=4, segment_length=50)
        assert sampled.metadata["sampled_from"] == len(long_trace)
        assert sampled.metadata["segments"] == 4

    def test_dependences_clipped_to_segments(self, long_trace):
        sampled = systematic_sample(long_trace, segments=10, segment_length=100)
        positions = np.arange(len(sampled)) % 100
        assert (sampled.src1 <= positions).all()
        assert (sampled.src2 <= positions).all()

    def test_segments_preserve_content(self, long_trace):
        sampled = systematic_sample(
            long_trace, segments=2, segment_length=100, offset=0
        )
        # first segment starts at the trace start
        assert (sampled.op[:100] == long_trace.op[:100]).all()
        assert (sampled.mem_block[:100] == long_trace.mem_block[:100]).all()

    def test_mix_approximately_preserved(self, long_trace):
        sampled = systematic_sample(long_trace, segments=20, segment_length=200)
        full_mix = long_trace.mix()
        sampled_mix = sampled.mix()
        for op_class, fraction in full_mix.items():
            assert sampled_mix[op_class] == pytest.approx(fraction, abs=0.03)

    def test_rejects_oversize_sample(self, long_trace):
        with pytest.raises(TraceSamplingError):
            systematic_sample(long_trace, segments=300, segment_length=100)

    def test_rejects_bad_parameters(self, long_trace):
        with pytest.raises(TraceSamplingError):
            systematic_sample(long_trace, segments=0, segment_length=10)
        with pytest.raises(TraceSamplingError):
            systematic_sample(long_trace, segments=1, segment_length=0)
        with pytest.raises(TraceSamplingError):
            systematic_sample(long_trace, segments=1, segment_length=10,
                              offset=len(long_trace))


class TestSamplingValidation:
    def test_sampled_trace_predicts_full_trace(self, long_trace):
        """The trace-sampling claim: 5x fewer instructions, small error."""
        validation = validate_sampling(
            long_trace, baseline_config(), segments=10, segment_length=400
        )
        assert validation.reduction == pytest.approx(5.0)
        assert validation.bips_error < 0.10
        assert validation.watts_error < 0.10

    def test_longer_segments_reduce_bias(self, long_trace):
        """Segment-boundary dependence clipping inflates IPC — the analogue
        of SMARTS's warm-up bias — so longer segments must be more accurate
        at equal total sample size."""
        short = validate_sampling(
            long_trace, baseline_config(), segments=20, segment_length=100
        )
        long = validate_sampling(
            long_trace, baseline_config(), segments=5, segment_length=400
        )
        assert long.bips_error < short.bips_error

    def test_reduction_reported(self, long_trace):
        validation = validate_sampling(
            long_trace, baseline_config(), segments=4, segment_length=500
        )
        assert validation.reduction == pytest.approx(10.0)
