"""Tests pinning the paper's Table 1 space."""

import pytest

from repro.designspace import (
    DEPTH,
    EXPLORATION_DEPTHS,
    WIDTH,
    exploration_space,
    extended_space,
    sampling_space,
)
from repro.simulator import baseline_point


class TestSamplingSpace:
    def test_size_matches_paper(self):
        assert len(sampling_space()) == 375_000

    def test_seven_parameter_groups(self):
        assert len(sampling_space().parameters) == 7

    def test_group_cardinalities(self):
        cards = [p.cardinality for p in sampling_space().parameters]
        assert cards == [10, 3, 10, 10, 5, 5, 5]

    def test_depth_levels(self):
        assert DEPTH.values == (9, 12, 15, 18, 21, 24, 27, 30, 33, 36)

    def test_width_derived_settings(self):
        assert WIDTH.derived["ls_queue"] == (15, 30, 45)
        assert WIDTH.derived["store_queue"] == (14, 28, 42)
        assert WIDTH.derived["functional_units"] == (1, 2, 4)

    def test_register_scaling_matches_table1(self):
        space = sampling_space()
        settings = space.machine_settings(
            space.point(
                depth=9, width=2, gpr_phys=130, br_resv=6,
                il1_kb=16, dl1_kb=8, l2_mb=0.25,
            )
        )
        assert settings["fpr_phys"] == 112
        assert settings["spr_phys"] == 96

    def test_reservation_scaling_matches_table1(self):
        space = sampling_space()
        settings = space.machine_settings(
            space.point(
                depth=9, width=2, gpr_phys=40, br_resv=15,
                il1_kb=16, dl1_kb=8, l2_mb=0.25,
            )
        )
        assert settings["fx_resv"] == 28
        assert settings["fp_resv"] == 14

    def test_cache_ranges(self):
        space = sampling_space()
        assert space.parameter("il1_kb").values == (16, 32, 64, 128, 256)
        assert space.parameter("dl1_kb").values == (8, 16, 32, 64, 128)
        assert space.parameter("l2_mb").values == (0.25, 0.5, 1.0, 2.0, 4.0)


class TestExplorationSpace:
    def test_size_matches_paper(self):
        assert len(exploration_space()) == 262_500

    def test_depths_are_12_to_30(self):
        assert exploration_space().parameter("depth").values == EXPLORATION_DEPTHS
        assert EXPLORATION_DEPTHS == (12, 15, 18, 21, 24, 27, 30)

    def test_exploration_is_subset_of_sampling(self):
        sampling = sampling_space()
        for point in [exploration_space().point_at(i) for i in (0, 1000, 262_499)]:
            # every exploration point is a valid sampling-space point
            assert sampling.point(**point.as_dict()) in sampling

    def test_baseline_point_snaps_table3(self):
        point = baseline_point(exploration_space())
        assert point["depth"] == 18  # 19 FO4 snapped to grid
        assert point["width"] == 4
        assert point["gpr_phys"] == 80
        assert point["il1_kb"] == 64
        assert point["dl1_kb"] == 32
        assert point["l2_mb"] == 2.0


class TestExtendedSpace:
    def test_adds_two_parameters(self):
        assert len(extended_space().parameters) == 9

    def test_size(self):
        assert len(extended_space()) == 375_000 * 4 * 2

    def test_associativity_levels(self):
        assert extended_space().parameter("dl1_assoc").values == (1, 2, 4, 8)

    def test_in_order_flag(self):
        assert extended_space().parameter("in_order").values == (0, 1)
