"""Tests for the distributed work-stealing backend.

Covers the lease protocol (atomic claims, stealing, fencing tokens),
the deterministic shard merge (including a hypothesis property over
arbitrary interleavings/duplications), end-to-end equivalence with the
serial executor, resume, and recovery from every injected protocol
fault (lease expiry, zombie worker, torn journal write).
"""

import json
import os
import time
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.harness.distributed import (
    WorkBundle,
    _lease_path,
    _read_lease,
    _release_lease,
    _try_claim,
    drain,
    init_run_dir,
    merge_shard_records,
    read_shards,
    run_worker,
    workers_status,
)
from repro.harness.resilience import (
    ChunkTask,
    DistributedConfig,
    Fault,
    FaultPlan,
    Journal,
    JournalFingerprintError,
    ResilienceError,
    RetryPolicy,
    fingerprint_payload,
    run_chunks,
)
from repro.obs.metrics import MetricsRegistry, merge_snapshots


def _double_chunk(values):
    """Module-level (picklable) chunk function for worker processes."""
    return [v * 2 for v in values]


def _tasks(n_chunks=4, chunk_len=3):
    tasks = []
    for i in range(n_chunks):
        values = list(range(i * chunk_len, (i + 1) * chunk_len))
        tasks.append(
            ChunkTask(
                index=i, fn=_double_chunk, args=(values,), size=chunk_len
            )
        )
    return tasks


def _fingerprint(tasks):
    return fingerprint_payload(
        {"kind": "test-distributed", "chunks": len(tasks)}
    )


def _serial_results(tasks):
    results, _ = run_chunks(tasks, workers=1)
    return results


def _run_distributed(tasks, run_dir, spawn=2, faults=None, journal=None,
                     lease_ttl=10.0, heartbeat_interval=0.5,
                     on_chunk=None):
    config = DistributedConfig(
        run_dir=run_dir,
        spawn=spawn,
        lease_ttl=lease_ttl,
        heartbeat_interval=heartbeat_interval,
    )
    return run_chunks(
        tasks,
        backend="distributed",
        distributed=config,
        fingerprint=_fingerprint(tasks),
        faults=faults,
        journal=journal,
        on_chunk=on_chunk,
    )


def _init(tmp_path, tasks, lease_ttl=10.0, faults=None):
    run_dir = tmp_path / "run"
    bundle = WorkBundle(
        fingerprint=_fingerprint(tasks), tasks=tuple(tasks), faults=faults
    )
    config = DistributedConfig(
        run_dir=run_dir,
        lease_ttl=lease_ttl,
        heartbeat_interval=min(0.5, lease_ttl / 5.0),
    )
    init_run_dir(run_dir, bundle, config)
    return run_dir


class TestLeaseProtocol:
    def test_claim_is_exclusive(self, tmp_path):
        tasks = _tasks()
        run_dir = _init(tmp_path, tasks)
        registry = MetricsRegistry()
        assert _try_claim(run_dir, 0, "w-a", 10.0, registry) == 1
        assert _try_claim(run_dir, 0, "w-b", 10.0, registry) is None
        counters = registry.snapshot()["counters"]
        assert counters["distributed.chunks_claimed{worker=w-a}"] == 1

    def test_reclaim_own_lease_keeps_token(self, tmp_path):
        tasks = _tasks()
        run_dir = _init(tmp_path, tasks)
        registry = MetricsRegistry()
        assert _try_claim(run_dir, 0, "w-a", 10.0, registry) == 1
        assert _try_claim(run_dir, 0, "w-a", 10.0, registry) == 1

    def test_stale_lease_stolen_with_higher_token(self, tmp_path):
        tasks = _tasks()
        run_dir = _init(tmp_path, tasks)
        registry = MetricsRegistry()
        assert _try_claim(run_dir, 0, "w-a", 10.0, registry) == 1
        lease = _lease_path(run_dir, 0)
        stale = time.time() - 100.0
        os.utime(lease, (stale, stale))
        assert _try_claim(run_dir, 0, "w-b", 10.0, registry) == 2
        body = _read_lease(lease)
        assert body["worker"] == "w-b" and body["token"] == 2
        counters = registry.snapshot()["counters"]
        assert counters["distributed.chunks_stolen{worker=w-b}"] == 1

    def test_release_only_own_lease(self, tmp_path):
        tasks = _tasks()
        run_dir = _init(tmp_path, tasks)
        registry = MetricsRegistry()
        _try_claim(run_dir, 0, "w-a", 10.0, registry)
        _release_lease(run_dir, 0, "w-b")
        assert _read_lease(_lease_path(run_dir, 0))["worker"] == "w-a"
        _release_lease(run_dir, 0, "w-a")
        assert _read_lease(_lease_path(run_dir, 0)) is None

    def test_init_rejects_fingerprint_mismatch(self, tmp_path):
        tasks = _tasks()
        run_dir = _init(tmp_path, tasks)
        other = WorkBundle(fingerprint="deadbeef", tasks=tuple(tasks))
        with pytest.raises(JournalFingerprintError) as excinfo:
            init_run_dir(
                run_dir, other, DistributedConfig(run_dir=run_dir)
            )
        message = str(excinfo.value)
        assert _fingerprint(tasks) in message
        assert "deadbeef" in message


def _chunk_record(index, worker, token, seq, payload):
    return {
        "kind": "chunk",
        "index": index,
        "attempts": 1,
        "payload": payload,
        "metrics": {
            "version": 1,
            "counters": {"work.done": 1.0},
            "gauges": {},
            "histograms": {},
        },
        "wall_s": 0.1,
        "cpu_s": 0.1,
        "worker": worker,
        "token": token,
        "seq": seq,
    }


def _worker_record(worker, seq, counter):
    return {
        "kind": "worker",
        "worker": worker,
        "seq": seq,
        "metrics": {
            "version": 1,
            "counters": {f"distributed.chunks_claimed{{worker={worker}}}":
                         float(counter)},
            "gauges": {},
            "histograms": {},
        },
    }


class TestMerge:
    def test_highest_token_wins(self):
        tasks = _tasks(n_chunks=1)
        records = [
            _chunk_record(0, "w-zombie", 1, 0, ["stale"]),
            _chunk_record(0, "w-stealer", 2, 0, ["fresh"]),
        ]
        winners, duplicates, _ = merge_shard_records(tasks, records)
        assert winners[0]["payload"] == ["fresh"]
        assert duplicates == {0: 1}

    def test_token_tie_resolved_by_worker_then_seq(self):
        tasks = _tasks(n_chunks=1)
        records = [
            _chunk_record(0, "w-b", 1, 0, ["b"]),
            _chunk_record(0, "w-a", 1, 5, ["a5"]),
            _chunk_record(0, "w-a", 1, 2, ["a2"]),
        ]
        winners, duplicates, _ = merge_shard_records(tasks, records)
        assert winners[0]["payload"] == ["a2"]
        assert duplicates == {0: 2}

    def test_exact_duplicates_collapse(self):
        tasks = _tasks(n_chunks=1)
        record = _chunk_record(0, "w-a", 1, 0, ["x"])
        winners, duplicates, _ = merge_shard_records(
            tasks, [record, dict(record), dict(record)]
        )
        assert winners[0]["payload"] == ["x"]
        assert duplicates == {}

    def test_worker_records_keep_highest_seq(self):
        tasks = _tasks(n_chunks=1)
        records = [
            _worker_record("w-a", 2, 3),
            _worker_record("w-a", 7, 9),
            _worker_record("w-b", 1, 4),
        ]
        _, _, worker_metrics = merge_shard_records(tasks, records)
        assert sorted(worker_metrics) == ["w-a", "w-b"]
        counters = worker_metrics["w-a"]["counters"]
        assert counters["distributed.chunks_claimed{worker=w-a}"] == 9.0

    def test_unknown_chunk_indexes_ignored(self):
        tasks = _tasks(n_chunks=2)
        records = [
            _chunk_record(0, "w-a", 1, 0, ["ok"]),
            _chunk_record(99, "w-a", 1, 1, ["stray"]),
        ]
        winners, _, _ = merge_shard_records(tasks, records)
        assert sorted(winners) == [0]


class TestMergeProperty:
    """Satellite: the merge is invariant under shard interleaving.

    Any permutation, duplication, or re-sharding of the worker records
    must fold to the identical winners, duplicate counts, and merged
    metrics snapshot — this is what makes crash/zombie recovery safe.
    """

    @staticmethod
    def _canonical_records():
        records = []
        for index in range(4):
            for worker, token in (("w-a", 1), ("w-b", 2), ("w-c", 2)):
                records.append(
                    _chunk_record(
                        index, worker, token, index, [worker, index, token]
                    )
                )
        for i, worker in enumerate(("w-a", "w-b", "w-c")):
            records.append(_worker_record(worker, 4, i + 1))
        return records

    @settings(max_examples=60, deadline=None)
    @given(data=st.data())
    def test_any_interleaving_merges_identically(self, data):
        tasks = _tasks(n_chunks=4)
        canonical = self._canonical_records()
        reference = merge_shard_records(tasks, canonical)

        shuffled = data.draw(st.permutations(canonical))
        # Duplicate a random sample of records (replayed shard reads).
        extras = data.draw(
            st.lists(
                st.sampled_from(canonical), min_size=0, max_size=6
            )
        )
        interleaved = list(shuffled) + [dict(r) for r in extras]
        winners, duplicates, worker_metrics = merge_shard_records(
            tasks, interleaved
        )
        ref_winners, ref_duplicates, ref_worker_metrics = reference
        assert winners == ref_winners
        assert duplicates == ref_duplicates
        assert worker_metrics == ref_worker_metrics
        merged = merge_snapshots(
            *(winners[i]["metrics"] for i in sorted(winners)),
            *worker_metrics.values(),
        )
        ref_merged = merge_snapshots(
            *(ref_winners[i]["metrics"] for i in sorted(ref_winners)),
            *ref_worker_metrics.values(),
        )
        assert merged == ref_merged

    @settings(max_examples=30, deadline=None)
    @given(
        subset=st.lists(
            st.integers(min_value=0, max_value=14),
            min_size=1,
            max_size=30,
        )
    )
    def test_partial_record_sets_never_crash(self, subset):
        tasks = _tasks(n_chunks=4)
        canonical = self._canonical_records()
        records = [canonical[i] for i in subset]
        winners, duplicates, worker_metrics = merge_shard_records(
            tasks, records
        )
        for index, winner in winners.items():
            assert winner["index"] == index
        assert all(count >= 1 for count in duplicates.values())


class TestDistributedRun:
    """End-to-end runs through ``run_chunks(backend='distributed')``."""

    def test_single_worker_matches_serial(self, tmp_path):
        tasks = _tasks()
        results, report = _run_distributed(tasks, tmp_path / "run", spawn=1)
        assert results == _serial_results(tasks)
        assert report.completed == len(tasks)
        assert report.failure is None

    def test_two_workers_match_serial(self, tmp_path):
        tasks = _tasks(n_chunks=6)
        results, report = _run_distributed(tasks, tmp_path / "run", spawn=2)
        assert results == _serial_results(tasks)
        assert report.completed == len(tasks)
        counters = report.metrics["counters"]
        claimed = sum(
            value
            for name, value in counters.items()
            if name.startswith("distributed.chunks_completed")
        )
        assert claimed == len(tasks)

    def test_on_chunk_fires_in_task_order(self, tmp_path):
        tasks = _tasks(n_chunks=5)
        seen = []

        def on_chunk(task, record, payload):
            seen.append(task.index)

        _run_distributed(
            tasks, tmp_path / "run", spawn=2, on_chunk=on_chunk
        )
        assert seen == [task.index for task in tasks]

    def test_requires_fingerprint(self):
        with pytest.raises(ResilienceError):
            run_chunks(_tasks(), backend="distributed")

    def test_unknown_backend_rejected(self):
        with pytest.raises(ResilienceError):
            run_chunks(_tasks(), backend="carrier-pigeon")

    def test_resume_skips_journaled_chunks(self, tmp_path):
        tasks = _tasks()
        fingerprint = _fingerprint(tasks)
        journal_path = tmp_path / "run.journal.jsonl"
        journal = Journal.open(journal_path, fingerprint)
        journal.record(0, 1, _double_chunk(tasks[0].args[0]))
        journal.record(2, 1, _double_chunk(tasks[2].args[0]))
        journal = Journal.open(journal_path, fingerprint)
        results, report = _run_distributed(
            tasks, tmp_path / "run", spawn=1, journal=journal
        )
        assert results == _serial_results(tasks)
        assert report.resumed == 2
        assert report.completed == len(tasks)

    def test_worker_metrics_merge_exactly_once(self, tmp_path):
        tasks = _tasks(n_chunks=6)
        _, report = _run_distributed(tasks, tmp_path / "run", spawn=2)
        counters = report.metrics["counters"]
        completed = {
            name: value
            for name, value in counters.items()
            if name.startswith("distributed.chunks_completed")
        }
        assert sum(completed.values()) == len(tasks)


class TestDistributedFaults:
    """Injected protocol faults recover with exact-result equivalence."""

    def _run_with_fault(self, tmp_path, kind):
        tasks = _tasks(n_chunks=4)
        faults = FaultPlan((Fault(chunk=1, kind=kind),))
        return tasks, _run_distributed(
            tasks,
            tmp_path / "run",
            spawn=2,
            faults=faults,
            lease_ttl=1.0,
            heartbeat_interval=0.2,
        )

    def test_lease_expiry_recovers(self, tmp_path):
        tasks, (results, report) = self._run_with_fault(
            tmp_path, "lease_expiry"
        )
        assert results == _serial_results(tasks)
        assert report.completed == len(tasks)

    def test_zombie_duplicate_resolved_by_fencing_token(self, tmp_path):
        tasks, (results, report) = self._run_with_fault(tmp_path, "zombie")
        assert results == _serial_results(tasks)
        assert report.completed == len(tasks)
        duplicates = [
            event
            for event in report.events
            if event["name"] == "distributed.duplicate"
        ]
        assert duplicates
        attrs = duplicates[0]["attrs"]
        assert attrs["chunk"] == 1
        assert attrs["winner_token"] >= 2

    def test_zombie_chunk_metrics_merge_exactly_once(self, tmp_path):
        tasks, (results, report) = self._run_with_fault(tmp_path, "zombie")
        assert report.completed == len(tasks)
        # Both sessions' worker metrics merge exactly once: the zombie's
        # original claim plus the survivor's steal are each counted one
        # time, never doubled by the duplicate completion record.
        counters = report.metrics["counters"]
        claimed = sum(
            value
            for name, value in counters.items()
            if name.startswith("distributed.chunks_claimed")
        )
        stolen = sum(
            value
            for name, value in counters.items()
            if name.startswith("distributed.chunks_stolen")
        )
        assert claimed == len(tasks) + 1
        assert stolen == 1

    def test_torn_write_recovers_with_warning(self, tmp_path):
        tasks, (results, report) = self._run_with_fault(
            tmp_path, "torn_write"
        )
        assert results == _serial_results(tasks)
        assert report.completed == len(tasks)
        warnings = [
            event["attrs"]
            for event in report.events
            if event["name"] == "resilience.journal_warning"
        ]
        assert any(
            w["kind"] in ("journal_torn_tail", "journal_bad_checksum")
            for w in warnings
        )

    def test_transient_fault_retries_inside_worker(self, tmp_path):
        tasks = _tasks(n_chunks=3)
        faults = FaultPlan((Fault(chunk=1, kind="transient"),))
        results, report = _run_distributed(
            tasks, tmp_path / "run", spawn=1, faults=faults
        )
        assert results == _serial_results(tasks)
        assert report.retried == 1


class TestWorkerManagement:
    def test_run_worker_completes_all_chunks(self, tmp_path):
        tasks = _tasks()
        run_dir = _init(tmp_path, tasks)
        outcome = run_worker(run_dir, worker_id="solo")
        assert sorted(outcome["completed"]) == [0, 1, 2, 3]
        assert outcome["crashed"] is False
        status = workers_status(run_dir)
        assert status["tasks"]["done"] == len(tasks)

    def test_max_chunks_limits_a_session(self, tmp_path):
        tasks = _tasks()
        run_dir = _init(tmp_path, tasks)
        outcome = run_worker(run_dir, worker_id="limited", max_chunks=2)
        assert len(outcome["completed"]) == 2
        outcome = run_worker(run_dir, worker_id="finisher")
        assert len(outcome["completed"]) == 2
        assert workers_status(run_dir)["tasks"]["done"] == len(tasks)

    def test_drain_stops_claiming(self, tmp_path):
        tasks = _tasks()
        run_dir = _init(tmp_path, tasks)
        drain(run_dir)
        outcome = run_worker(run_dir, worker_id="drained")
        assert outcome["completed"] == []
        assert workers_status(run_dir)["drain"] is True

    def test_two_sequential_workers_split_the_run(self, tmp_path):
        tasks = _tasks(n_chunks=6)
        run_dir = _init(tmp_path, tasks)
        first = run_worker(run_dir, worker_id="w-a", max_chunks=3)
        second = run_worker(run_dir, worker_id="w-b")
        done = sorted(first["completed"] + second["completed"])
        assert done == [0, 1, 2, 3, 4, 5]
        records, warnings = read_shards(run_dir, _fingerprint(tasks))
        assert warnings == []
        winners, duplicates, worker_metrics = merge_shard_records(
            tasks, records
        )
        assert sorted(winners) == [0, 1, 2, 3, 4, 5]
        assert duplicates == {}
        assert sorted(worker_metrics) == ["w-a", "w-b"]
        for task in tasks:
            assert winners[task.index]["payload"] == _double_chunk(
                task.args[0]
            )

    def test_crashed_worker_chunks_are_stolen(self, tmp_path):
        tasks = _tasks(n_chunks=4)
        faults = FaultPlan((Fault(chunk=0, kind="torn_write"),))
        run_dir = _init(tmp_path, tasks, lease_ttl=0.5, faults=faults)
        crashed = run_worker(run_dir, worker_id="victim")
        assert crashed["crashed"] is True
        assert 0 not in crashed["completed"]
        time.sleep(0.6)  # let the victim's lease go stale
        survivor = run_worker(run_dir, worker_id="survivor")
        assert 0 in survivor["completed"]
        records, _ = read_shards(run_dir, _fingerprint(tasks))
        winners, _, _ = merge_shard_records(tasks, records)
        assert winners[0]["payload"] == _double_chunk(tasks[0].args[0])
        assert winners[0]["worker"] == "survivor"
        assert winners[0]["token"] == 2
