"""Tests for power-performance metrics."""

import numpy as np
import pytest

from repro.metrics import (
    MetricError,
    bips3_per_watt,
    delay_seconds,
    energy_delay_squared,
    relative_efficiency,
)


class TestDelay:
    def test_scalar(self):
        assert delay_seconds(2.0, 4e9) == pytest.approx(2.0)

    def test_array(self):
        delays = delay_seconds(np.array([1.0, 2.0]), 2e9)
        assert delays == pytest.approx([2.0, 1.0])

    def test_rejects_zero_bips(self):
        with pytest.raises(MetricError):
            delay_seconds(0.0, 1e9)

    def test_rejects_zero_ref(self):
        with pytest.raises(MetricError):
            delay_seconds(1.0, 0.0)


class TestEfficiency:
    def test_formula(self):
        assert bips3_per_watt(2.0, 8.0) == pytest.approx(1.0)

    def test_array(self):
        values = bips3_per_watt(np.array([1.0, 2.0]), np.array([1.0, 1.0]))
        assert values == pytest.approx([1.0, 8.0])

    def test_rejects_zero_watts(self):
        with pytest.raises(MetricError):
            bips3_per_watt(1.0, 0.0)

    def test_rejects_negative_bips(self):
        with pytest.raises(MetricError):
            bips3_per_watt(-1.0, 1.0)

    def test_cubic_performance_sensitivity(self):
        # 10% performance gain at equal power is ~33% efficiency gain
        gain = bips3_per_watt(1.1, 10.0) / bips3_per_watt(1.0, 10.0)
        assert gain == pytest.approx(1.331)


class TestED2:
    def test_inverse_relationship_with_bips3w(self):
        # ED^2 = ref^3 / (bips^3/w) / 1e27; check proportionality
        a = energy_delay_squared(1.0, 10.0, 1e9)
        b = energy_delay_squared(2.0, 10.0, 1e9)
        assert a / b == pytest.approx(8.0)

    def test_energy_component(self):
        value = energy_delay_squared(1.0, 10.0, 1e9)
        assert value == pytest.approx(10.0)  # 10W x 1s x 1s^2


class TestRelative:
    def test_baseline_is_unity(self):
        assert relative_efficiency(1.5, 20.0, 1.5, 20.0) == pytest.approx(1.0)

    def test_better_design(self):
        assert relative_efficiency(2.0, 20.0, 1.0, 20.0) == pytest.approx(8.0)

    def test_array_numerator(self):
        values = relative_efficiency(np.array([1.0, 2.0]), 10.0, 1.0, 10.0)
        assert values == pytest.approx([1.0, 8.0])
