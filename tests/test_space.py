"""Unit tests for DesignSpace and DesignPoint."""

import pytest
from hypothesis import given, strategies as st

from repro.designspace import DesignPoint, DesignSpace, Parameter, ParameterError


@pytest.fixture
def space():
    return DesignSpace(
        [
            Parameter(name="depth", values=(9, 12, 15), unit="FO4"),
            Parameter(
                name="width",
                values=(2, 4),
                log2_encode=True,
                derived={"fu": (1, 2)},
            ),
            Parameter(name="l2", values=(0.25, 0.5, 1.0), log2_encode=True),
        ],
        name="toy",
    )


class TestSize:
    def test_len_is_cartesian_product(self, space):
        assert len(space) == 3 * 2 * 3

    def test_repr_mentions_dims(self, space):
        assert "3 x 2 x 3" in repr(space)

    def test_requires_parameters(self):
        with pytest.raises(ParameterError):
            DesignSpace([])


class TestPointAddressing:
    def test_point_at_zero_is_all_first_levels(self, space):
        point = space.point_at(0)
        assert point.values == (9, 2, 0.25)

    def test_point_at_last(self, space):
        point = space.point_at(len(space) - 1)
        assert point.values == (15, 4, 1.0)

    def test_round_trip_all_indices(self, space):
        for index in range(len(space)):
            assert space.index_of(space.point_at(index)) == index

    def test_out_of_range_raises(self, space):
        with pytest.raises(IndexError):
            space.point_at(len(space))
        with pytest.raises(IndexError):
            space.point_at(-1)

    def test_iteration_yields_distinct_points(self, space):
        points = list(space)
        assert len(points) == len(space)
        assert len(set(points)) == len(space)

    @given(st.integers(0, 17))
    def test_round_trip_property(self, index):
        space = DesignSpace(
            [
                Parameter(name="a", values=(1, 2, 3)),
                Parameter(name="b", values=(1, 2, 3)),
                Parameter(name="c", values=(1, 2)),
            ]
        )
        assert space.index_of(space.point_at(index)) == index


class TestPointConstruction:
    def test_point_by_keywords(self, space):
        point = space.point(depth=12, width=4, l2=0.5)
        assert point["depth"] == 12
        assert point["l2"] == 0.5

    def test_point_missing_parameter(self, space):
        with pytest.raises(ParameterError, match="missing"):
            space.point(depth=12, width=4)

    def test_point_unknown_parameter(self, space):
        with pytest.raises(ParameterError, match="unknown"):
            space.point(depth=12, width=4, l2=0.5, bogus=1)

    def test_point_invalid_level(self, space):
        with pytest.raises(ParameterError):
            space.point(depth=13, width=4, l2=0.5)

    def test_snap_to_nearest_levels(self, space):
        point = space.snap(depth=13.4, width=3, l2=0.6)
        assert point.values == (12, 2, 0.5)

    def test_contains(self, space):
        assert space.point(depth=9, width=2, l2=0.25) in space
        stranger = DesignPoint(("depth",), (9,))
        assert stranger not in space


class TestDesignPoint:
    def test_getitem_unknown_raises_keyerror(self, space):
        point = space.point_at(0)
        with pytest.raises(KeyError):
            point["bogus"]

    def test_get_with_default(self, space):
        point = space.point_at(0)
        assert point.get("bogus", 42) == 42
        assert point.get("depth") == 9

    def test_as_dict(self, space):
        assert space.point_at(0).as_dict() == {"depth": 9, "width": 2, "l2": 0.25}

    def test_replace(self, space):
        point = space.point_at(0).replace(depth=15)
        assert point["depth"] == 15
        assert point["width"] == 2

    def test_replace_unknown_raises(self, space):
        with pytest.raises(KeyError):
            space.point_at(0).replace(bogus=1)

    def test_hashable(self, space):
        assert len({space.point_at(0), space.point_at(0), space.point_at(1)}) == 2

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ParameterError):
            DesignPoint(("a", "b"), (1,))

    def test_str_mentions_values(self, space):
        assert "depth=9" in str(space.point_at(0))


class TestMachineSettings:
    def test_includes_derived(self, space):
        settings = space.machine_settings(space.point(depth=9, width=4, l2=1.0))
        assert settings == {"depth": 9, "width": 4, "fu": 2, "l2": 1.0}

    def test_rejects_foreign_point(self, space):
        with pytest.raises(ParameterError):
            space.machine_settings(DesignPoint(("depth",), (9,)))


class TestRestriction:
    def test_restrict_shrinks_space(self, space):
        smaller = space.restrict({"depth": (9, 12)})
        assert len(smaller) == 2 * 2 * 3

    def test_restrict_keeps_derived_alignment(self, space):
        smaller = space.restrict({"width": (4,)})
        settings = smaller.machine_settings(smaller.point(depth=9, width=4, l2=0.25))
        assert settings["fu"] == 2

    def test_restrict_unknown_parameter(self, space):
        with pytest.raises(ParameterError):
            space.restrict({"bogus": (1,)})

    def test_restrict_invalid_level(self, space):
        with pytest.raises(ParameterError):
            space.restrict({"depth": (13,)})

    def test_fix_pins_single_values(self, space):
        pinned = space.fix(depth=12, width=2)
        assert len(pinned) == 3
        for point in pinned:
            assert point["depth"] == 12
            assert point["width"] == 2

    def test_sweep_varies_one_parameter(self, space):
        base = space.point(depth=9, width=2, l2=0.25)
        points = space.sweep("depth", base)
        assert [p["depth"] for p in points] == [9, 12, 15]
        assert all(p["width"] == 2 for p in points)

    def test_parameter_lookup_error_lists_names(self, space):
        with pytest.raises(ParameterError, match="depth"):
            space.parameter("bogus")
