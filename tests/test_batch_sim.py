"""Batched timing kernel: equivalence contract, blocks, and trace LRU.

The batch kernel's contract is *exact* equivalence with the scalar
pipeline — identical cycles, identical ActivityCounts field by field,
identical watts — not agreement within tolerance.  The property test
drives randomized configs, trace lengths, memory modes, warming, and
prefetch through both paths; the campaign tests check the contract
survives chunking, journaling, and resume.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.designspace import sample_uar, sampling_space
from repro.harness import ResilienceConfig, get_scale, run_campaign
from repro.harness.resilience import ChunkFailure, Fault, FaultPlan
from repro.obs.metrics import isolated_registry
from repro.simulator import Simulator
from repro.workloads import BENCHMARK_NAMES, get_profile

SPACE = sampling_space()


def assert_identical(batch_results, scalar_results):
    """The equivalence contract: exact, field-by-field, no tolerances."""
    assert len(batch_results) == len(scalar_results)
    for got, want in zip(batch_results, scalar_results):
        assert got.cycles == want.cycles
        assert got.counts.as_dict() == want.counts.as_dict()
        assert float(got.watts) == float(want.watts)
        assert got.benchmark == want.benchmark


class TestEquivalenceProperty:
    @settings(deadline=None, max_examples=12)
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        n_points=st.integers(min_value=1, max_value=6),
        trace_length=st.integers(min_value=150, max_value=600),
        memory_mode=st.sampled_from(["stack", "functional"]),
        warm=st.booleans(),
        prefetch=st.booleans(),
        benchmark=st.sampled_from(("gzip", "mesa", "mcf")),
    )
    def test_batch_matches_scalar(
        self, seed, n_points, trace_length, memory_mode, warm, prefetch,
        benchmark,
    ):
        simulator = Simulator(memory_mode=memory_mode, warm=warm)
        trace = simulator.trace_for(
            get_profile(benchmark), trace_length, seed=seed % 3
        )
        points = sample_uar(SPACE, n_points, seed=seed)
        batch = simulator.simulate_batch(
            SPACE, points, trace, prefetch=prefetch
        )
        scalar = [
            simulator.simulate_point(SPACE, point, trace, prefetch=prefetch)
            for point in points
        ]
        assert_identical(batch, scalar)


class TestBatchAPI:
    def test_every_benchmark_matches_scalar(self):
        simulator = Simulator()
        points = sample_uar(SPACE, 4, seed=13)
        for benchmark in BENCHMARK_NAMES:
            trace = simulator.trace_for(get_profile(benchmark), 400, seed=1)
            batch = simulator.simulate_batch(SPACE, points, trace)
            scalar = [
                simulator.simulate_point(SPACE, p, trace) for p in points
            ]
            assert_identical(batch, scalar)

    def test_block_split_matches_single_block(self):
        simulator = Simulator()
        trace = simulator.trace_for(get_profile("gzip"), 400, seed=2)
        points = sample_uar(SPACE, 8, seed=3)
        whole = simulator.simulate_batch(SPACE, points, trace)
        for batch_size in (1, 3, 8, 64):
            split = simulator.simulate_batch(
                SPACE, points, trace, batch_size=batch_size
            )
            assert_identical(split, whole)

    def test_empty_points_returns_empty(self):
        simulator = Simulator()
        trace = simulator.trace_for(get_profile("gzip"), 200, seed=0)
        assert simulator.simulate_batch(SPACE, [], trace) == []

    def test_rejects_bad_batch_size(self):
        simulator = Simulator()
        trace = simulator.trace_for(get_profile("gzip"), 200, seed=0)
        points = sample_uar(SPACE, 2, seed=0)
        with pytest.raises(ValueError, match="batch_size"):
            simulator.simulate_batch(SPACE, points, trace, batch_size=0)

    def test_simulate_many_delegates_to_batch(self):
        simulator = Simulator()
        trace = simulator.trace_for(get_profile("gzip"), 300, seed=4)
        points = sample_uar(SPACE, 3, seed=5)
        assert_identical(
            simulator.simulate_many(SPACE, points, trace),
            simulator.simulate_batch(SPACE, points, trace),
        )

    def test_batch_metrics_are_reported(self):
        with isolated_registry() as registry:
            simulator = Simulator()
            trace = simulator.trace_for(get_profile("gzip"), 300, seed=6)
            points = sample_uar(SPACE, 5, seed=7)
            simulator.simulate_batch(SPACE, points, trace, batch_size=2)
            counters = registry.snapshot()["counters"]
            assert counters["simulator.batch.points"] == 5
            assert counters["simulator.batch.blocks"] == 3
            assert counters["simulator.instructions"] == 5 * len(trace)


class TestTraceCacheLRU:
    def test_rejects_bad_cache_size(self):
        with pytest.raises(ValueError, match="trace_cache_size"):
            Simulator(trace_cache_size=0)

    def test_hit_miss_evict_counters(self):
        with isolated_registry() as registry:
            simulator = Simulator(trace_cache_size=2)
            profile = get_profile("gzip")
            simulator.trace_for(profile, 200, seed=0)   # miss
            simulator.trace_for(profile, 200, seed=0)   # hit
            simulator.trace_for(profile, 200, seed=1)   # miss
            simulator.trace_for(profile, 200, seed=2)   # miss, evicts seed=0
            counters = registry.snapshot()["counters"]
            assert counters["sim.trace_cache.hit"] == 1
            assert counters["sim.trace_cache.miss"] == 3
            assert counters["sim.trace_cache.evict"] == 1
            assert len(simulator._trace_cache) == 2

    def test_eviction_order_is_least_recently_used(self):
        simulator = Simulator(trace_cache_size=2)
        profile = get_profile("gzip")
        simulator.trace_for(profile, 200, seed=0)
        simulator.trace_for(profile, 200, seed=1)
        simulator.trace_for(profile, 200, seed=0)   # refresh seed=0
        simulator.trace_for(profile, 200, seed=2)   # evicts seed=1, not 0
        keys = list(simulator._trace_cache)
        assert ("gzip", 200, 0) in keys
        assert ("gzip", 200, 1) not in keys

    def test_evicted_trace_regenerates_identically(self):
        simulator = Simulator(trace_cache_size=1)
        profile = get_profile("gzip")
        first = simulator.trace_for(profile, 200, seed=0)
        simulator.trace_for(profile, 200, seed=1)   # evicts seed=0
        again = simulator.trace_for(profile, 200, seed=0)
        assert first is not again
        assert np.array_equal(first.op, again.op)
        assert np.array_equal(first.mem_block, again.mem_block)
        assert np.array_equal(first.taken, again.taken)


class TestCampaignBatchPath:
    """The chunked campaign path runs on the batch kernel; the serial path
    stays scalar as the reference — so these are campaign-level
    batch-vs-scalar equivalence checks, with journaling in the loop."""

    @pytest.fixture(scope="class")
    def tiny_scale(self):
        return get_scale("ci").with_overrides(
            name="tiny-batch", trace_length=400, n_train=6, n_validation=2
        )

    @pytest.fixture(scope="class")
    def serial_campaign(self, tiny_scale):
        return run_campaign(Simulator(), scale=tiny_scale, benchmarks=["gzip"])

    def assert_campaigns_equal(self, got, want):
        for split in ("train", "validation"):
            got_metrics = got.dataset("gzip", split).metrics
            want_metrics = want.dataset("gzip", split).metrics
            assert np.array_equal(got_metrics["bips"], want_metrics["bips"])
            assert np.array_equal(got_metrics["watts"], want_metrics["watts"])

    def test_chunked_batch_path_matches_scalar_serial(
        self, tiny_scale, serial_campaign
    ):
        for batch_size in (None, 2):
            chunked = run_campaign(
                Simulator(),
                scale=tiny_scale,
                benchmarks=["gzip"],
                resilience=ResilienceConfig(),
                batch_size=batch_size,
            )
            self.assert_campaigns_equal(chunked, serial_campaign)

    def test_resumed_journaled_run_is_bitwise_identical(
        self, tiny_scale, serial_campaign, tmp_path
    ):
        path = tmp_path / "campaign.journal.jsonl"
        faults = FaultPlan([Fault(chunk=5, kind="permanent")])
        with pytest.raises(ChunkFailure):
            run_campaign(
                Simulator(),
                scale=tiny_scale,
                benchmarks=["gzip"],
                resilience=ResilienceConfig(
                    journal_path=path, faults=faults
                ),
            )
        assert path.exists()
        resumed = run_campaign(
            Simulator(),
            scale=tiny_scale,
            benchmarks=["gzip"],
            resilience=ResilienceConfig(journal_path=path, resume=True),
        )
        assert resumed.run_report.resumed >= 1
        self.assert_campaigns_equal(resumed, serial_campaign)
