"""Tests for occupancy windows and throughput limiters."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.simulator import OccupancyWindow, ResourceError, ThroughputLimiter


class TestOccupancyWindow:
    def test_first_acquisitions_are_free(self):
        window = OccupancyWindow(3)
        assert window.acquire(10) == 0
        assert window.acquire(20) == 0
        assert window.acquire(30) == 0

    def test_wraps_to_oldest_release(self):
        window = OccupancyWindow(2)
        window.acquire(10)
        window.acquire(20)
        assert window.acquire(30) == 10   # slot freed by the first occupant
        assert window.acquire(40) == 20

    def test_capacity_one_serializes(self):
        window = OccupancyWindow(1)
        window.acquire(5)
        assert window.acquire(9) == 5
        assert window.acquire(12) == 9

    def test_next_free_peeks_without_consuming(self):
        window = OccupancyWindow(1)
        window.acquire(7)
        assert window.next_free() == 7
        assert window.next_free() == 7
        assert window.acquire(9) == 7

    def test_reset(self):
        window = OccupancyWindow(2)
        window.acquire(5)
        window.reset()
        assert window.next_free() == 0
        assert window.count == 0

    def test_rejects_zero_capacity(self):
        with pytest.raises(ResourceError):
            OccupancyWindow(0)

    @settings(max_examples=40, deadline=None)
    @given(st.integers(1, 8), st.lists(st.integers(0, 100), min_size=1, max_size=60))
    def test_constraint_is_release_of_nth_previous(self, capacity, releases):
        window = OccupancyWindow(capacity)
        constraints = [window.acquire(r) for r in releases]
        for k, constraint in enumerate(constraints):
            expected = releases[k - capacity] if k >= capacity else 0
            assert constraint == expected


class TestThroughputLimiter:
    def test_allows_rate_per_cycle(self):
        limiter = ThroughputLimiter(2)
        assert limiter.next_slot(0) == 0
        assert limiter.next_slot(0) == 0
        assert limiter.next_slot(0) == 1  # third event of cycle 0 slips

    def test_later_request_not_delayed(self):
        limiter = ThroughputLimiter(1)
        assert limiter.next_slot(0) == 0
        assert limiter.next_slot(10) == 10

    def test_back_to_back_serialization(self):
        limiter = ThroughputLimiter(1)
        slots = [limiter.next_slot(0) for _ in range(5)]
        assert slots == [0, 1, 2, 3, 4]

    def test_rejects_zero_rate(self):
        with pytest.raises(ResourceError):
            ThroughputLimiter(0)

    def test_reset(self):
        limiter = ThroughputLimiter(1)
        limiter.next_slot(0)
        limiter.reset()
        assert limiter.next_slot(0) == 0

    @settings(max_examples=40, deadline=None)
    @given(st.integers(1, 4), st.lists(st.integers(0, 30), min_size=1, max_size=80))
    def test_never_exceeds_rate_per_cycle(self, rate, earliest_times):
        # feed monotonically non-decreasing requests
        earliest_times = sorted(earliest_times)
        limiter = ThroughputLimiter(rate)
        slots = [limiter.next_slot(t) for t in earliest_times]
        from collections import Counter

        per_cycle = Counter(slots)
        assert max(per_cycle.values()) <= rate
        # events never run before they are ready
        for t, slot in zip(earliest_times, slots):
            assert slot >= t
