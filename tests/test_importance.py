"""Tests for drop-one predictor importance."""

import numpy as np
import pytest

from repro.regression import (
    FitError,
    InteractionTerm,
    LinearTerm,
    ModelSpec,
    SplineTerm,
    predictor_importance,
)


def make_data(n=400, seed=0):
    rng = np.random.default_rng(seed)
    x_strong = rng.uniform(0, 10, n)
    x_weak = rng.uniform(0, 10, n)
    x_junk = rng.uniform(0, 10, n)
    y = 5.0 * x_strong + 0.3 * x_weak + 0.4 * rng.standard_normal(n)
    return {"strong": x_strong, "weak": x_weak, "junk": x_junk, "y": y}


SPEC = ModelSpec(
    "y",
    (LinearTerm("strong"), LinearTerm("weak"), LinearTerm("junk")),
)


class TestImportance:
    def test_ranking_matches_construction(self):
        importance = predictor_importance(SPEC, make_data())
        assert importance.ranked() == ["strong", "weak", "junk"]

    def test_strong_dominates_shares(self):
        importance = predictor_importance(SPEC, make_data())
        shares = importance.shares()
        assert shares["strong"] > 0.9
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_junk_near_zero(self):
        importance = predictor_importance(SPEC, make_data())
        assert importance.partial_r_squared["junk"] == pytest.approx(0.0, abs=0.01)

    def test_interactions_charged_to_both_predictors(self):
        rng = np.random.default_rng(1)
        a = rng.uniform(0, 4, 300)
        b = rng.uniform(0, 4, 300)
        data = {"a": a, "b": b, "y": a * b + 0.05 * rng.standard_normal(300)}
        spec = ModelSpec(
            "y", (LinearTerm("a"), LinearTerm("b"), InteractionTerm("a", "b"))
        )
        importance = predictor_importance(spec, data)
        # dropping either predictor removes the interaction, costing R^2
        assert importance.partial_r_squared["a"] > 0.1
        assert importance.partial_r_squared["b"] > 0.1

    def test_cannot_drop_only_predictor(self):
        data = {"x": np.arange(50.0), "y": np.arange(50.0)}
        spec = ModelSpec("y", (SplineTerm("x", knots=3),))
        with pytest.raises(FitError):
            predictor_importance(spec, data)

    def test_degenerate_shares_uniform(self):
        rng = np.random.default_rng(2)
        data = {
            "a": rng.uniform(0, 1, 100),
            "b": rng.uniform(0, 1, 100),
            "y": rng.standard_normal(100),  # pure noise
        }
        spec = ModelSpec("y", (LinearTerm("a"), LinearTerm("b")))
        shares = predictor_importance(spec, data).shares()
        assert sum(shares.values()) == pytest.approx(1.0)


class TestOnCampaignModels:
    def test_mcf_performance_driven_by_l2(self, ctx):
        from repro.regression import performance_spec

        data = ctx.campaign.dataset("mcf", "train").columns()
        importance = predictor_importance(performance_spec(), data)
        assert importance.ranked()[0] == "l2_mb"

    def test_power_driven_by_depth_and_width(self, ctx):
        from repro.regression import power_spec

        data = ctx.campaign.dataset("gzip", "train").columns()
        importance = predictor_importance(power_spec(), data)
        top_two = set(importance.ranked()[:2])
        assert top_two == {"depth", "width"}
