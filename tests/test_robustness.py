"""Tests for bootstrap robustness analysis."""

import pytest

from repro.studies import robustness


class TestBootstrapModels:
    def test_replicate_count(self, ctx):
        models = robustness.bootstrap_models(ctx, "gzip", replicates=4, seed=1)
        assert len(models) == 4

    def test_models_differ_across_replicates(self, ctx):
        models = robustness.bootstrap_models(ctx, "gzip", replicates=2, seed=1)
        a = models[0].bips.coefficients
        b = models[1].bips.coefficients
        assert not (a == b).all()

    def test_deterministic_with_seed(self, ctx):
        a = robustness.bootstrap_models(ctx, "gzip", replicates=2, seed=9)
        b = robustness.bootstrap_models(ctx, "gzip", replicates=2, seed=9)
        assert (a[0].bips.coefficients == b[0].bips.coefficients).all()

    def test_rejects_zero_replicates(self, ctx):
        with pytest.raises(ValueError):
            robustness.bootstrap_models(ctx, "gzip", replicates=0)

    def test_models_remain_predictive(self, ctx):
        models = robustness.bootstrap_models(ctx, "gzip", replicates=3, seed=2)
        for replicate in models:
            assert replicate.bips.r_squared > 0.6
            assert replicate.watts.r_squared > 0.85


class TestOptimumStability:
    def test_report_fields(self, ctx):
        stability = robustness.optimum_stability(ctx, "mcf", replicates=6, seed=3)
        assert stability.replicates == 6
        assert 0.0 < stability.modal_fraction <= 1.0
        assert set(stability.parameter_agreement) == set(
            ctx.exploration_space.names
        )
        assert stability.efficiency_cv >= 0.0

    def test_agreement_fractions_bounded(self, ctx):
        stability = robustness.optimum_stability(ctx, "mcf", replicates=6, seed=3)
        for fraction in stability.parameter_agreement.values():
            assert 0.0 <= fraction <= 1.0

    def test_points_live_in_exploration_space(self, ctx):
        stability = robustness.optimum_stability(ctx, "gzip", replicates=5, seed=3)
        assert stability.nominal_point in ctx.exploration_space
        assert stability.modal_point in ctx.exploration_space

    def test_mcf_l2_choice_is_stable(self, ctx):
        """mcf's defining conclusion — it wants a big L2 — should survive
        bootstrap resampling far better than the exact design point."""
        stability = robustness.optimum_stability(ctx, "mcf", replicates=8, seed=3)
        assert stability.parameter_agreement["l2_mb"] >= 0.6


class TestDepthStability:
    def test_histogram_is_distribution(self, ctx):
        stability = robustness.depth_optimum_stability(
            ctx, replicates=6, seed=4, benchmarks=["gzip", "mcf"]
        )
        total = sum(stability.depth_histogram.values())
        assert total == pytest.approx(1.0)
        assert stability.nominal_depth in stability.depth_histogram

    def test_within_one_level_bounded(self, ctx):
        stability = robustness.depth_optimum_stability(
            ctx, replicates=6, seed=4, benchmarks=["gzip", "mcf"]
        )
        assert 0.0 <= stability.within_one_level <= 1.0

    def test_depth_optimum_reasonably_stable(self, ctx):
        """Figure 6's claim that the optimum is resolved within ~3 FO4
        implies bootstrap replicates should cluster near the nominal."""
        stability = robustness.depth_optimum_stability(
            ctx, replicates=8, seed=4, benchmarks=["gzip", "gcc", "mesa"]
        )
        assert stability.within_one_level >= 0.5
