"""Fixture: unguarded size divisions (NUM002 fires at lines 5 and 10)."""


def mean(values):
    return sum(values) / len(values)


def normalize(weights):
    total = sum(weights)
    return [w / total for w in weights]
