"""Fixture: exact float comparisons (NUM001 fires at lines 5, 9 and 13)."""


def same_ratio(a, b, c, d):
    return a / b == c / d


def is_half(x):
    return x == 0.5


def not_threshold(x):
    return x != 2.5
