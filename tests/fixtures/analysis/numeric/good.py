"""Fixture: guarded numerics (no NUM findings)."""

import math

import numpy as np


def mean(values):
    if not values:
        return 0.0
    return sum(values) / len(values)


def log_response(y):
    y = np.asarray(y, dtype=float)
    if (y <= 0).any():
        raise ValueError("log requires positive responses")
    return np.log(y)


def close_enough(a, b):
    return math.isclose(a, b, rel_tol=1e-9)


def stage_delay(depth):
    return math.sqrt(max(depth, 1.0))
