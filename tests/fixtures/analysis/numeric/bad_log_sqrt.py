"""Fixture: unguarded transcendental domains (NUM003 at lines 9 and 13)."""

import math

import numpy as np


def log_response(y):
    return np.log(y)


def stage_delay(depth):
    return math.sqrt(depth)
