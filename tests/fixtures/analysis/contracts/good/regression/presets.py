"""Fixture: model spec over defined predictors only."""

from repro.regression.terms import InteractionTerm, SplineTerm

TERMS = (
    SplineTerm("depth", knots=4),
    SplineTerm("width", knots=3),
    InteractionTerm("depth", "width"),
)
