"""Fixture: config consuming exactly the defined parameters."""


def build(settings):
    depth = settings["depth"]
    stages = settings["stages"]
    width = settings.get("width", 4)
    return depth, stages, width
