"""Fixture: design space fully consumed downstream (no CON findings)."""

from repro.designspace.parameters import Parameter

DEPTH = Parameter(
    name="depth",
    values=(9, 12, 15),
    derived={"stages": (3, 4, 5)},
)

WIDTH = Parameter(
    name="width",
    values=(2, 4, 8),
)
