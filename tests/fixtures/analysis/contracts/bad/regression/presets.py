"""Fixture: model spec naming an unknown predictor (CON003 at line 7)."""

from repro.regression.terms import LinearTerm, SplineTerm

TERMS = (
    SplineTerm("depth", knots=4),
    LinearTerm("mystery_knob"),
)
