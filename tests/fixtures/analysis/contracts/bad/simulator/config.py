"""Fixture: config consuming a phantom parameter (CON002 at line 7)."""


def build(settings):
    depth = settings["depth"]
    stages = settings["stages"]
    l3 = settings["l3_mb"]
    return depth, stages, l3
