"""Fixture: design space defining one dead parameter (CON001 at line 12)."""

from repro.designspace.parameters import Parameter

DEPTH = Parameter(
    name="depth",
    values=(9, 12, 15),
    derived={"stages": (3, 4, 5)},
)

GHOST = Parameter(
    name="ghost_width",
    values=(2, 4, 8),
)
