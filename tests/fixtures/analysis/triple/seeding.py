"""Fixture: global seeding (exactly one DET001 at line 5)."""

import numpy as np

np.random.seed(7)
