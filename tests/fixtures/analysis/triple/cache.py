"""Fixture: bare except (exactly one HYG001 at line 7)."""


def read(path):
    try:
        return open(path).read()
    except:  # noqa: E722 (deliberate)
        return None
