"""Fixture: upward simulator -> studies import (one LAY001 at line 3)."""

from repro.studies import search
