"""Fixture: sanctioned imports only (no LAY findings).

Downward imports are fine; upward ones are allowed behind TYPE_CHECKING
or inside a function (lazy import).
"""

from typing import TYPE_CHECKING

from repro.designspace import table1
from repro.workloads import trace

if TYPE_CHECKING:
    from repro.studies import common


def lazy_search():
    from repro.studies import search

    return search
