"""Fixture: simulator reaching upward (LAY001 fires at lines 3 and 4)."""

from repro.studies import search
import repro.harness.campaign
