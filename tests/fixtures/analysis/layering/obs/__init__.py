"""Package __init__ whose relative import shadows a ranked sibling name.

``from .metrics import ...`` here targets ``obs.metrics`` (this package's
own module), not the top-level ranked ``metrics`` package — LAY001 must
stay silent.
"""

from .metrics import merge_snapshots  # noqa: F401
