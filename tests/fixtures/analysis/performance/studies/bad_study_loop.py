"""Study-layer per-point validation loop."""


def validate(ctx, benchmark, points):
    return [ctx.simulate(benchmark, p) for p in points]
