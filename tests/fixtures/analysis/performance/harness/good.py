"""Batched and single-shot simulation uses that must stay silent."""


def batched(simulator, space, points, trace):
    return simulator.simulate_batch(space, points, trace)


def batched_per_benchmark(ctx, benchmarks, points):
    return {b: ctx.simulate_many(b, points) for b in benchmarks}


def single(simulator, space, point, trace):
    return simulator.simulate_point(space, point, trace)
