"""Per-point simulation loops the batch kernel should replace."""


def collect(simulator, space, points, trace):
    results = []
    for point in points:
        results.append(simulator.simulate_point(space, point, trace))
    return results


def collect_comp(simulator, space, points, trace):
    return [simulator.simulate_point(space, p, trace) for p in points]


def drain(ctx, benchmark, queue):
    while queue:
        ctx.simulate(benchmark, queue.pop())
