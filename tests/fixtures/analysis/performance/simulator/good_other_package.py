"""Scalar loops outside harness/studies are not PERF001's business."""


def reference_loop(simulator, space, points, trace):
    return [simulator.simulate_point(space, p, trace) for p in points]
