"""Impure memoized helpers: mutations happen only on cache misses."""

from functools import lru_cache

HITS = {}


@lru_cache(maxsize=None)
def tally(name, bucket):
    bucket.append(name)
    HITS[name] = True
    return len(bucket)
