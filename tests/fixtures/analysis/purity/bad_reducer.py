"""A reducer update must not mutate the incoming block."""


class SweepReducer:
    """Base protocol."""

    def update(self, block):
        raise NotImplementedError


class RunningMeanReducer(SweepReducer):
    """Impure: clobbers the block it folds."""

    def update(self, block):
        block.bips[0] = 0.0
        self.count = 1
        return block.bips[0]
