"""Pure memoized helpers and self-only reducers: silent near-misses."""

from functools import lru_cache


@lru_cache(maxsize=None)
def square(value):
    return value * value


class RunningTotalReducer:
    """Accumulates into self only — reducers may mutate their own state."""

    def __init__(self):
        self.total = 0.0

    def update(self, block):
        self.total += float(block)
        return self.total
