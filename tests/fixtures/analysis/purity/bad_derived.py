"""A Trace.derived build callable that mutates module state."""

SEEN = []


def register_view(trace):
    def build():
        SEEN.append("view")
        return list(SEEN)

    return trace.derived(("view",), build)
