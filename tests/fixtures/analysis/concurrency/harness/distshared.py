"""Module-level mutable state a distributed worker must not write."""

PENDING = []
CLAIMED = 0


def note_claim():
    global CLAIMED
    CLAIMED += 1


def queue_result(value):
    PENDING.append(value)
