"""Distributed worker spawned as a Process; its helpers touch globals."""

from multiprocessing import Process

from .distshared import note_claim, queue_result


def worker_main(queue):
    note_claim()
    queue_result(queue)


def spawn_workers(queue):
    workers = [Process(target=worker_main, args=(queue,)) for _ in range(2)]
    for proc in workers:
        proc.start()
    return workers
