"""Chunk worker handed to a process pool; its helpers touch globals."""

from concurrent.futures import ProcessPoolExecutor

from .state import bump, record, reset_driver_side


def simulate_chunk(chunk):
    bump(1.0)
    record(chunk)
    return chunk


def run_chunks(chunks):
    with ProcessPoolExecutor(max_workers=2) as pool:
        futures = [pool.submit(simulate_chunk, chunk) for chunk in chunks]
    return [future.result() for future in futures]


def driver_summary():
    # Near-miss: writes globals too, but only the driver ever calls it —
    # it is not reachable from any pool entrypoint.
    reset_driver_side()
    return True
