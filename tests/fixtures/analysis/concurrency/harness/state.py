"""Module-level mutable state a pool worker must not write."""

RESULTS = []
TOTAL = 0.0


def bump(amount):
    global TOTAL
    TOTAL += amount


def record(value):
    RESULTS.append(value)


def reset_driver_side():
    global TOTAL
    TOTAL = 0.0
