"""RNG factories: the seed flows from a parameter to the constructor."""

import numpy as np


def make_rng(seed=None):
    return np.random.default_rng(seed)


def forward_rng(seed=None):
    return make_rng(seed)
