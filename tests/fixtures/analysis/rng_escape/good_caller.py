"""Seeded factory calls: silent near-misses."""

from factory import forward_rng, make_rng


def run_sim():
    rng = make_rng(7)
    return rng.normal()


def resume_sim():
    rng = forward_rng(seed=123)
    return rng.standard_normal()
