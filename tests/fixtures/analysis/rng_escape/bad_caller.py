"""Unseeded escapes: factories called without an effective seed."""

from factory import forward_rng, make_rng


def run_sim():
    rng = make_rng()
    return rng.normal()


def resume_sim():
    rng = forward_rng(seed=None)
    return rng.standard_normal()
