"""Fixture: global RNG state (DET001 fires at lines 7, 8 and 12)."""

import random

import numpy as np

random.seed(1234)
VALUE = np.random.rand(4)


def shuffle_in_place(items):
    random.shuffle(items)
    return items
