"""Fixture: explicitly seeded generators (no determinism findings)."""

import random

import numpy as np

RNG = np.random.default_rng(42)
LEGACY = np.random.RandomState(7)
STDLIB = random.Random(2026)


def sampler(seed):
    return np.random.default_rng(seed)
