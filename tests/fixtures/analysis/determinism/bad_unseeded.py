"""Fixture: unseeded RNG construction (DET002 fires at lines 7-10)."""

import random

import numpy as np

RNG = np.random.default_rng()
LEGACY = np.random.RandomState()
STDLIB = random.Random()
EXPLICIT_NONE = np.random.default_rng(seed=None)
