"""Raw clocks outside the harness package are not OBS001's business."""

import time


def measure(fn):
    started = time.perf_counter()
    fn()
    return time.perf_counter() - started
