"""Harness timing via raw clocks — OBS001 fires on each call."""

import time
from time import perf_counter


def measure(fn):
    started = time.perf_counter()
    fn()
    return time.process_time() - started


def quick(fn):
    t0 = perf_counter()
    fn()
    return perf_counter() - t0
