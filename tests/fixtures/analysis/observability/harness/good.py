"""Scheduling clocks and obs-based timing — OBS001 stays silent."""

import time

from repro.obs.tracing import Stopwatch


def wait_until(deadline):
    while time.monotonic() < deadline:
        time.sleep(0.01)


def timed(fn):
    with Stopwatch() as watch:
        fn()
    return watch.wall_s
