"""Fixture: clean error handling (no HYG findings)."""


def load(path, default=""):
    try:
        return open(path).read()
    except OSError:
        return default


def collect(item, bucket=None):
    bucket = [] if bucket is None else bucket
    bucket.append(item)
    return bucket
