"""Fixture: hygiene violations (HYG001 at 7, HYG002 at 14, HYG003 at 18)."""


def load(path):
    try:
        return open(path).read()
    except:  # noqa: E722 (deliberate)
        return ""


def maybe(fn):
    try:
        fn()
    except ValueError:
        pass


def collect(item, bucket=[]):
    bucket.append(item)
    return bucket
