"""Cross-module properties: the timing model against analytical bounds.

The pipeline's cycle count must respect hard lower bounds computable from
first principles — retire bandwidth and the dataflow critical path — for
*every* workload and configuration.  These tests tie the simulator to the
characterization module's independent computation of the same quantities.
"""

import dataclasses

import pytest
from hypothesis import given, settings, strategies as st

from repro.simulator import baseline_config, run_pipeline
from repro.workloads import dataflow_ilp, generate_trace, get_profile
from repro.workloads.suite import SUITE

BENCH_NAMES = sorted(SUITE)


def random_config(rng_seed: int):
    """A valid random machine configuration (not confined to Table 1)."""
    import numpy as np

    rng = np.random.default_rng(rng_seed)
    return baseline_config().with_overrides(
        depth_fo4=float(rng.choice([12, 15, 18, 21, 24, 27, 30])),
        width=int(rng.choice([2, 4, 8])),
        functional_units=int(rng.choice([1, 2, 4])),
        gpr_phys=int(rng.choice([40, 70, 100, 130])),
        fpr_phys=int(rng.choice([40, 72, 112])),
        ls_queue=int(rng.choice([15, 30, 45])),
        store_queue=int(rng.choice([14, 28, 42])),
        fx_resv=int(rng.choice([10, 20, 28])),
        fp_resv=int(rng.choice([5, 10, 14])),
        br_resv=int(rng.choice([6, 10, 15])),
        il1_kb=float(rng.choice([16, 64, 256])),
        dl1_kb=float(rng.choice([8, 32, 128])),
        l2_mb=float(rng.choice([0.25, 1.0, 4.0])),
    )


class TestBandwidthBound:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 2**31 - 1), st.sampled_from(BENCH_NAMES))
    def test_cycles_at_least_retire_bound(self, seed, bench_name):
        trace = generate_trace(get_profile(bench_name), 1000, seed=seed % 7)
        config = random_config(seed)
        outcome = run_pipeline(trace, config)
        assert outcome.cycles >= len(trace) / config.width

    def test_ipc_below_width_for_all_benchmarks(self):
        for bench_name in BENCH_NAMES:
            trace = generate_trace(get_profile(bench_name), 1500, seed=1)
            config = baseline_config().with_overrides(width=2, functional_units=1)
            outcome = run_pipeline(trace, config)
            assert len(trace) / outcome.cycles <= 2.0


class TestDataflowBound:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 2**31 - 1), st.sampled_from(BENCH_NAMES))
    def test_cycles_at_least_critical_path(self, seed, bench_name):
        """The dependence chain is a hard floor: each dataflow level costs
        at least one cycle regardless of machine resources."""
        trace = generate_trace(get_profile(bench_name), 1000, seed=seed % 5)
        config = random_config(seed)
        outcome = run_pipeline(trace, config)
        critical_path_length = len(trace) / dataflow_ilp(trace)
        assert outcome.cycles >= critical_path_length

    def test_high_ilp_trace_runs_faster_on_same_machine(self):
        mesa = generate_trace(get_profile("mesa"), 2000, seed=3)
        mcf = generate_trace(get_profile("mcf"), 2000, seed=3)
        config = baseline_config()
        mesa_ipc = len(mesa) / run_pipeline(mesa, config).cycles
        mcf_ipc = len(mcf) / run_pipeline(mcf, config).cycles
        assert mesa_ipc > mcf_ipc
        assert dataflow_ilp(mesa) > dataflow_ilp(mcf)


class TestConsistencyAcrossConfigs:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 2**31 - 1))
    def test_counts_invariant_to_machine(self, seed):
        """Event *counts* (instruction classes, branch outcomes, miss
        classification under the same caches) depend on the trace, not the
        core: two configs differing only in core resources must agree."""
        trace = generate_trace(get_profile("gcc"), 800, seed=seed % 5)
        small = baseline_config().with_overrides(
            width=2, functional_units=1, gpr_phys=40, fpr_phys=40
        )
        large = baseline_config().with_overrides(
            width=8, functional_units=4, gpr_phys=130, fpr_phys=112
        )
        a = run_pipeline(trace, small).counts
        b = run_pipeline(trace, large).counts
        assert a.branches == b.branches
        assert a.loads == b.loads
        assert a.mispredicts == b.mispredicts  # same predictor, same stream
        assert a.dl1_misses == b.dl1_misses    # same caches, same reuse
