"""Tests for significance testing and confidence intervals."""

import numpy as np
import pytest

from repro.regression import (
    FitError,
    LinearTerm,
    ModelSpec,
    coefficient_tests,
    confidence_intervals,
    fit_ols,
    nested_f_test,
    overall_f_test,
)


def noisy_data(n=300, seed=0, signal=2.0, noise=1.0):
    rng = np.random.default_rng(seed)
    x = rng.uniform(0, 10, n)
    junk = rng.uniform(0, 10, n)  # unrelated predictor
    y = 1.0 + signal * x + noise * rng.standard_normal(n)
    return {"x": x, "junk": junk, "y": y}


@pytest.fixture(scope="module")
def model():
    return fit_ols(
        ModelSpec("y", (LinearTerm("x"), LinearTerm("junk"))), noisy_data()
    )


class TestCoefficientTests:
    def test_signal_is_significant(self, model):
        rows = {row.name: row for row in coefficient_tests(model)}
        assert rows["x"].significant()
        assert rows["x"].p_value < 1e-10

    def test_junk_is_not_significant(self, model):
        rows = {row.name: row for row in coefficient_tests(model)}
        assert not rows["junk"].significant(alpha=0.01)

    def test_row_count(self, model):
        assert len(coefficient_tests(model)) == 3  # intercept + 2

    def test_t_statistic_sign_matches_estimate(self, model):
        for row in coefficient_tests(model):
            if row.std_error > 0 and row.estimate != 0:
                assert np.sign(row.t_statistic) == np.sign(row.estimate)


class TestFTests:
    def test_overall_significant_with_signal(self, model):
        result = overall_f_test(model)
        assert result.significant()
        assert result.df_numerator == 2

    def test_overall_not_significant_on_pure_noise(self):
        rng = np.random.default_rng(8)
        data = {
            "x": rng.uniform(0, 1, 200),
            "y": rng.standard_normal(200),
        }
        result = overall_f_test(fit_ols(ModelSpec("y", (LinearTerm("x"),)), data))
        assert result.p_value > 0.01

    def test_nested_prefers_needed_predictor(self):
        data = noisy_data()
        full = fit_ols(ModelSpec("y", (LinearTerm("x"), LinearTerm("junk"))), data)
        reduced = fit_ols(ModelSpec("y", (LinearTerm("junk"),)), data)
        assert nested_f_test(full, reduced).significant()

    def test_nested_rejects_useless_predictor(self):
        data = noisy_data()
        full = fit_ols(ModelSpec("y", (LinearTerm("x"), LinearTerm("junk"))), data)
        reduced = fit_ols(ModelSpec("y", (LinearTerm("x"),)), data)
        assert not nested_f_test(full, reduced).significant(alpha=0.01)

    def test_nested_requires_more_parameters(self, model):
        with pytest.raises(FitError):
            nested_f_test(model, model)

    def test_nested_requires_same_sample(self, model):
        other = fit_ols(
            ModelSpec("y", (LinearTerm("x"),)), noisy_data(n=100, seed=2)
        )
        with pytest.raises(FitError):
            nested_f_test(model, other)


class TestConfidenceIntervals:
    def test_true_coefficient_inside_interval(self, model):
        intervals = confidence_intervals(model, level=0.99)
        low, high = intervals["x"]
        assert low <= 2.0 <= high

    def test_interval_widens_with_level(self, model):
        narrow = confidence_intervals(model, level=0.5)["x"]
        wide = confidence_intervals(model, level=0.99)["x"]
        assert wide[1] - wide[0] > narrow[1] - narrow[0]

    def test_invalid_level(self, model):
        with pytest.raises(FitError):
            confidence_intervals(model, level=1.5)
