"""Tests for the ANN baseline (Ipek et al. comparator)."""

import numpy as np
import pytest

from repro.baselines import ANNConfig, ANNError, fit_ann
from repro.baselines.ann import _sigmoid
from repro.regression import SqrtTransform, prediction_errors


def make_data(n=400, noise=0.02, seed=0):
    rng = np.random.default_rng(seed)
    x1 = rng.uniform(0, 1, n)
    x2 = rng.uniform(0, 1, n)
    y = 1.0 + 2.0 * x1 - x2 + 1.5 * x1 * x2 + noise * rng.standard_normal(n)
    return {"x1": x1, "x2": x2, "y": y}


FAST = ANNConfig(hidden_units=8, epochs=1500, learning_rate=0.3, seed=1)


class TestTraining:
    def test_learns_smooth_function(self):
        data = make_data()
        model = fit_ann(data, "y", ("x1", "x2"), config=FAST)
        errors = np.abs(model.predict(data) - data["y"])
        assert np.median(errors) < 0.1

    def test_loss_decreases(self):
        model = fit_ann(make_data(), "y", ("x1", "x2"), config=FAST)
        history = model.loss_history
        assert history[-1] < history[0] / 5

    def test_deterministic_with_seed(self):
        data = make_data()
        a = fit_ann(data, "y", ("x1", "x2"), config=FAST)
        b = fit_ann(data, "y", ("x1", "x2"), config=FAST)
        assert np.allclose(a.predict(data), b.predict(data))

    def test_early_stopping_records_epoch(self):
        config = ANNConfig(hidden_units=4, epochs=5000, patience=50, seed=2)
        model = fit_ann(make_data(), "y", ("x1", "x2"), config=config)
        assert model.train_epochs <= 5000

    def test_transform_round_trip(self):
        rng = np.random.default_rng(3)
        x = rng.uniform(0, 1, 300)
        y = (1.0 + x) ** 2
        model = fit_ann(
            {"x": x, "y": y}, "y", ("x",),
            transform=SqrtTransform(), config=FAST,
        )
        predictions = model.predict({"x": np.array([0.5])})
        assert predictions[0] == pytest.approx(2.25, rel=0.1)

    def test_nonlinearity_capture(self):
        # an XOR-ish target a linear model cannot represent
        rng = np.random.default_rng(4)
        x1 = rng.integers(0, 2, 600).astype(float)
        x2 = rng.integers(0, 2, 600).astype(float)
        y = np.logical_xor(x1 > 0.5, x2 > 0.5).astype(float) + 1.0
        config = ANNConfig(hidden_units=8, epochs=4000, learning_rate=0.5, seed=5)
        model = fit_ann({"x1": x1, "x2": x2, "y": y}, "y", ("x1", "x2"), config=config)
        errors = prediction_errors(y, model.predict({"x1": x1, "x2": x2}))
        assert np.median(errors) < 0.1


class TestGradients:
    def test_backprop_matches_finite_differences(self):
        """One analytic gradient step equals the numeric gradient."""
        rng = np.random.default_rng(6)
        X = rng.uniform(0, 1, (20, 3))
        t = rng.uniform(-1, 1, 20)
        w_hidden = rng.normal(0, 0.5, (3, 4))
        b_hidden = rng.normal(0, 0.1, 4)
        w_out = rng.normal(0, 0.5, 4)
        b_out = 0.1

        def loss(wh):
            hidden = _sigmoid(X @ wh + b_hidden)
            error = hidden @ w_out + b_out - t
            return float(error @ error) / len(t)

        hidden = _sigmoid(X @ w_hidden + b_hidden)
        grad_out = 2.0 * (hidden @ w_out + b_out - t) / len(t)
        delta = np.outer(grad_out, w_out) * hidden * (1 - hidden)
        analytic = X.T @ delta

        eps = 1e-6
        for i in (0, 2):
            for j in (0, 3):
                bumped = w_hidden.copy()
                bumped[i, j] += eps
                numeric = (loss(bumped) - loss(w_hidden)) / eps
                assert analytic[i, j] == pytest.approx(numeric, rel=1e-3, abs=1e-8)


class TestValidationAndErrors:
    def test_missing_response(self):
        with pytest.raises(ANNError):
            fit_ann({"x": np.zeros(20)}, "y", ("x",))

    def test_missing_predictor_at_predict_time(self):
        model = fit_ann(make_data(), "y", ("x1", "x2"), config=FAST)
        with pytest.raises(ANNError):
            model.predict({"x1": np.zeros(3)})

    def test_too_few_observations(self):
        with pytest.raises(ANNError):
            fit_ann({"x": np.zeros(5), "y": np.zeros(5)}, "y", ("x",))

    def test_no_predictors(self):
        with pytest.raises(ANNError):
            fit_ann(make_data(), "y", ())

    def test_bad_config(self):
        with pytest.raises(ANNError):
            ANNConfig(hidden_units=0)
        with pytest.raises(ANNError):
            ANNConfig(momentum=1.5)


class TestOnSimulatorData:
    def test_ann_competitive_with_regression(self, ctx):
        """The Ipek et al. comparison: both methods should predict well."""
        from repro.regression import PREDICTORS

        train = ctx.campaign.dataset("gzip", "train").columns()
        validation = ctx.campaign.dataset("gzip", "validation").columns()
        config = ANNConfig(hidden_units=12, epochs=2500, learning_rate=0.2, seed=7)
        model = fit_ann(
            train, "bips", PREDICTORS, transform=SqrtTransform(), config=config
        )
        errors = prediction_errors(validation["bips"], model.predict(validation))
        assert np.median(errors) < 0.25
