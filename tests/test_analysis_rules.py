"""Per-rule tests for the static analyzer.

Each rule family has known-good and known-bad fixture snippets under
``tests/fixtures/analysis/``; the tests assert the *exact* rule ids and
line numbers that fire (and that the good snippets stay silent).
"""

from pathlib import Path

import pytest

from repro.analysis import (
    Baseline,
    BaselineEntry,
    BaselineError,
    Finding,
    Severity,
    all_rules,
    analyze_paths,
    get_rule,
    render_json,
    render_text,
)

FIXTURES = Path(__file__).parent / "fixtures" / "analysis"
REPO = Path(__file__).resolve().parents[1]


def run(subdir, **kwargs):
    root = FIXTURES / subdir
    return analyze_paths([root], root=root, **kwargs)


def hits(report):
    return [(f.rule, f.path, f.line) for f in report.findings]


class TestDeterminism:
    def test_bad_fixtures_fire_exactly(self):
        assert hits(run("determinism")) == [
            ("DET001", "bad_global_state.py", 7),
            ("DET001", "bad_global_state.py", 8),
            ("DET001", "bad_global_state.py", 12),
            ("DET002", "bad_unseeded.py", 7),
            ("DET002", "bad_unseeded.py", 8),
            ("DET002", "bad_unseeded.py", 9),
            ("DET002", "bad_unseeded.py", 10),
        ]

    def test_good_fixture_is_silent(self):
        report = run("determinism")
        assert not [f for f in report.findings if f.path == "good.py"]

    def test_test_code_is_exempt(self, tmp_path):
        test_file = tmp_path / "test_sampler.py"
        test_file.write_text(
            '"""Doc."""\n\nimport numpy as np\n\nnp.random.seed(1)\n'
        )
        report = analyze_paths([tmp_path], root=tmp_path)
        assert report.findings == []


class TestNumeric:
    def test_bad_fixtures_fire_exactly(self):
        assert hits(run("numeric")) == [
            ("NUM002", "bad_division.py", 5),
            ("NUM002", "bad_division.py", 10),
            ("NUM001", "bad_float_eq.py", 5),
            ("NUM001", "bad_float_eq.py", 9),
            ("NUM001", "bad_float_eq.py", 13),
            ("NUM003", "bad_log_sqrt.py", 9),
            ("NUM003", "bad_log_sqrt.py", 13),
        ]

    def test_guarded_code_is_silent(self):
        report = run("numeric")
        assert not [f for f in report.findings if f.path == "good.py"]


class TestLayering:
    def test_upward_imports_fire_exactly(self):
        assert hits(run("layering")) == [
            ("LAY001", "simulator/bad_upward.py", 3),
            ("LAY001", "simulator/bad_upward.py", 4),
        ]

    def test_type_checking_and_lazy_imports_are_exempt(self):
        report = run("layering")
        assert not [
            f for f in report.findings if "good_downward" in f.path
        ]

    def test_package_init_relative_import_resolves_in_package(self):
        # ``obs/__init__.py`` does ``from .metrics import ...``: that is
        # obs's own submodule, not the ranked top-level ``metrics``.
        report = run("layering")
        assert not [f for f in report.findings if "__init__" in f.path]


class TestContracts:
    def test_dead_phantom_and_unknown_fire_exactly(self):
        assert hits(run("contracts/bad")) == [
            ("CON001", "designspace/table1.py", 12),
            ("CON003", "regression/presets.py", 7),
            ("CON002", "simulator/config.py", 7),
        ]

    def test_consistent_tree_is_silent(self):
        assert hits(run("contracts/good")) == []

    def test_contract_rules_skip_partial_trees(self):
        # Only the regression side present: no design space to check against.
        root = FIXTURES / "contracts" / "bad" / "regression"
        report = analyze_paths([root], root=root)
        assert [f for f in report.findings if f.rule.startswith("CON")] == []


class TestHygiene:
    def test_bad_fixture_fires_exactly(self):
        assert hits(run("hygiene")) == [
            ("HYG001", "bad.py", 7),
            ("HYG002", "bad.py", 14),
            ("HYG003", "bad.py", 18),
        ]

    def test_good_fixture_is_silent(self):
        report = run("hygiene")
        assert not [f for f in report.findings if f.path == "good.py"]


class TestObservability:
    def test_bad_fixture_fires_exactly(self):
        assert hits(run("observability")) == [
            ("OBS001", "harness/bad_raw_clock.py", 8),
            ("OBS001", "harness/bad_raw_clock.py", 10),
            ("OBS001", "harness/bad_raw_clock.py", 14),
            ("OBS001", "harness/bad_raw_clock.py", 16),
        ]

    def test_obs_timing_and_other_packages_are_silent(self):
        report = run("observability")
        assert not [f for f in report.findings if "good" in f.path]


class TestPerformance:
    def test_bad_fixtures_fire_exactly(self):
        assert hits(run("performance")) == [
            ("PERF001", "harness/bad_scalar_loop.py", 7),
            ("PERF001", "harness/bad_scalar_loop.py", 12),
            ("PERF001", "harness/bad_scalar_loop.py", 17),
            ("PERF001", "studies/bad_study_loop.py", 5),
        ]

    def test_batched_single_shot_and_other_packages_are_silent(self):
        report = run("performance")
        assert not [f for f in report.findings if "good" in f.path]


class TestConcurrency:
    def test_worker_reachable_writes_fire_exactly(self):
        assert hits(run("concurrency")) == [
            ("RACE001", "harness/distshared.py", 9),
            ("RACE002", "harness/distshared.py", 13),
            ("RACE001", "harness/state.py", 9),
            ("RACE002", "harness/state.py", 13),
        ]

    def test_driver_only_writes_are_silent(self):
        # ``reset_driver_side`` writes the same globals but is only
        # called from ``driver_summary``, which no pool entrypoint
        # reaches — the near-miss must stay silent.
        report = run("concurrency")
        assert not [f for f in report.findings if f.line >= 16]

    def test_worker_module_alone_is_silent(self):
        # Partial tree: without the submitting module there are no
        # entrypoints, so the project rules must not guess.
        root = FIXTURES / "concurrency" / "harness"
        report = analyze_paths([root / "state.py"], root=root)
        assert [f.rule for f in report.findings] == []

    def test_process_target_is_an_entrypoint(self):
        # ``spawner.py`` hands ``worker_main`` to ``Process(target=...)``
        # — the distributed-worker analogue of ``pool.submit``.  Its
        # helpers in ``distshared.py`` must fire, and the reach must come
        # from the spawn site: without ``spawner.py`` there is no
        # entrypoint and ``distshared.py`` is silent.
        root = FIXTURES / "concurrency"
        harness = root / "harness"
        with_spawn = analyze_paths(
            [harness / "spawner.py", harness / "distshared.py"], root=root
        )
        assert hits(with_spawn) == [
            ("RACE001", "harness/distshared.py", 9),
            ("RACE002", "harness/distshared.py", 13),
        ]
        assert all("worker_main" in f.message for f in with_spawn.findings)
        alone = analyze_paths([harness / "distshared.py"], root=root)
        assert [f.rule for f in alone.findings] == []


class TestPurity:
    def test_impure_memoized_functions_fire_exactly(self):
        assert hits(run("purity")) == [
            ("PURE001", "bad_derived.py", 8),
            ("PURE001", "bad_memo.py", 10),
            ("PURE001", "bad_memo.py", 11),
            ("PURE001", "bad_reducer.py", 15),
        ]

    def test_pure_memo_and_self_mutating_reducer_are_silent(self):
        report = run("purity")
        assert not [f for f in report.findings if f.path == "good.py"]


class TestRngEscape:
    def test_unseeded_factory_calls_fire_exactly(self):
        assert hits(run("rng_escape")) == [
            ("DET003", "bad_caller.py", 7),
            ("DET003", "bad_caller.py", 12),
        ]

    def test_seeded_factory_calls_are_silent(self):
        report = run("rng_escape")
        assert not [f for f in report.findings if f.path == "good_caller.py"]

    def test_factory_module_itself_is_silent(self):
        # The factory forwards its parameter — only call sites that pin
        # the seed to None (or rely on a None default) are escapes.
        report = run("rng_escape")
        assert not [f for f in report.findings if f.path == "factory.py"]


class TestAcceptanceTriple:
    def test_seeded_violations_yield_exactly_three_findings(self):
        """The ISSUE acceptance check: one DET001, one LAY001, one HYG001."""
        assert hits(run("triple")) == [
            ("HYG001", "cache.py", 7),
            ("DET001", "seeding.py", 5),
            ("LAY001", "simulator/timing.py", 3),
        ]


class TestBaseline:
    def test_baseline_suppresses_matching_findings(self):
        report = run("triple")
        entry = BaselineEntry(
            rule="HYG001",
            path="cache.py",
            context="except:  # noqa: E722 (deliberate)",
            reason="fixture",
        )
        filtered = run("triple", baseline=Baseline(entries=[entry]))
        assert len(filtered.findings) == len(report.findings) - 1
        assert [f for f, _ in filtered.suppressed][0].rule == "HYG001"
        assert filtered.stale_baseline == []

    def test_stale_entries_are_reported(self):
        entry = BaselineEntry(
            rule="DET001", path="no_such.py", context="", reason="gone"
        )
        report = run("triple", baseline=Baseline(entries=[entry]))
        assert report.stale_baseline == [entry]
        assert report.exit_code(strict=True) == 1

    def test_unselected_rules_do_not_age_entries_stale(self):
        # A baseline entry for DET001 must not be "stale" when only
        # HYG001 ran — the rule that could match it never executed.
        entry = BaselineEntry(
            rule="DET001",
            path="seeding.py",
            context="np.random.seed(7)",
            reason="fixture",
        )
        report = run("triple", rules=["HYG001"], baseline=Baseline(entries=[entry]))
        assert report.stale_baseline == []
        assert report.suppressed == []

    def test_roundtrip_through_file(self, tmp_path):
        report = run("triple")
        baseline = Baseline.from_findings(report.findings, reason="accepted")
        path = tmp_path / "baseline.json"
        baseline.save(path)
        reloaded = Baseline.load(path)
        assert len(reloaded.entries) == 3
        clean = run("triple", baseline=reloaded)
        assert clean.findings == []
        assert clean.exit_code(strict=True) == 0

    def test_duplicate_context_findings_consume_entries_once(self):
        # Two findings sharing a stripped source line must not both hide
        # behind one baseline entry — each entry suppresses at most one.
        first = Finding(
            rule="HYG001", severity=Severity.ERROR, path="a.py",
            line=3, message="bare except", context="except:",
        )
        second = Finding(
            rule="HYG001", severity=Severity.ERROR, path="a.py",
            line=9, message="bare except", context="except:",
        )
        entry = BaselineEntry(
            rule="HYG001", path="a.py", context="except:", reason="one"
        )
        active, suppressed, stale = Baseline(entries=[entry]).partition(
            [first, second]
        )
        assert [(f.line) for f, _ in suppressed] == [3]
        assert active == [second]
        assert stale == []
        # A second identical entry suppresses the second finding.
        twice = Baseline(entries=[entry, entry])
        active, suppressed, stale = twice.partition([first, second])
        assert active == [] and len(suppressed) == 2 and stale == []

    def test_malformed_baseline_raises(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text('{"entries": [{"path": "x.py"}]}')
        with pytest.raises(BaselineError):
            Baseline.load(path)

    def test_missing_baseline_is_empty(self, tmp_path):
        assert Baseline.load(tmp_path / "nope.json").entries == []


class TestDocExample:
    """The docs' "Adding a rule" example must match the real Rule API."""

    def _example_code(self):
        import re

        text = (REPO / "docs" / "ANALYSIS.md").read_text(encoding="utf-8")
        section = text.split("## Adding a rule", 1)[1]
        match = re.search(r"```python\n(.*?)```", section, re.S)
        assert match, "docs/ANALYSIS.md lost its Adding-a-rule example"
        return match.group(1)

    def test_example_compiles_and_runs_against_the_real_api(self, tmp_path):
        code = self._example_code()
        # Rebind the example's package-relative imports to the installed
        # modules and neutralize @register so the global registry stays
        # untouched (the completeness test pins the exact rule-id set).
        code = code.replace(
            "from ..findings import Severity",
            "from repro.analysis.findings import Severity",
        )
        code = code.replace(
            "from ..registry import Rule, register",
            "from repro.analysis.registry import Rule",
        )
        namespace = {"register": lambda cls: cls}
        exec(compile(code, "docs/ANALYSIS.md", "exec"), namespace)
        rule = namespace["NoPrintRule"]()

        from repro.analysis.context import build_module_context

        sample = tmp_path / "lib.py"
        sample.write_text('"""Doc."""\n\nprint("hi")\n')
        ctx, error = build_module_context(sample, tmp_path)
        assert error is None
        findings = list(rule.check_module(ctx))
        assert [(f.rule, f.line) for f in findings] == [("HYG004", 3)]
        # The line anchor must also produce the baseline fingerprint.
        assert findings[0].context == 'print("hi")'


class TestRunnerAndReporting:
    def test_exit_codes_by_severity(self):
        report = run("numeric")  # warnings only
        assert report.exit_code() == 0
        assert report.exit_code(strict=True) == 1
        errors = run("hygiene")  # contains an error (HYG001)
        assert errors.exit_code() == 1

    def test_rule_selection(self):
        report = run("hygiene", rules=["HYG001"])
        assert [f.rule for f in report.findings] == ["HYG001"]
        with pytest.raises(KeyError):
            run("hygiene", rules=["NOPE999"])

    def test_syntax_error_becomes_parse_finding(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def broken(:\n")
        report = analyze_paths([tmp_path], root=tmp_path)
        assert [f.rule for f in report.findings] == ["PARSE"]
        assert report.findings[0].severity is Severity.ERROR

    def test_renderers_cover_findings(self):
        report = run("triple")
        text = render_text(report)
        assert "seeding.py:5" in text and "DET001" in text
        assert "3 findings" in text
        import json

        payload = json.loads(render_json(report))
        assert payload["summary"]["error"] == 3
        assert {f["rule"] for f in payload["findings"]} == {
            "DET001", "LAY001", "HYG001",
        }

    def test_registry_is_complete_and_documented(self):
        rules = all_rules()
        ids = [rule.id for rule in rules]
        assert ids == sorted(ids)
        expected = {
            "DET001", "DET002", "DET003", "NUM001", "NUM002", "NUM003",
            "LAY001", "CON001", "CON002", "CON003",
            "HYG001", "HYG002", "HYG003", "OBS001", "PERF001",
            "PURE001", "RACE001", "RACE002",
        }
        assert set(ids) == expected
        for rule in rules:
            assert rule.description, rule.id
            assert rule.scope in ("module", "project"), rule.id
        assert get_rule("LAY001").severity is Severity.ERROR
        assert get_rule("RACE001").severity is Severity.ERROR
        assert get_rule("DET003").severity is Severity.ERROR

    def test_every_rule_family_has_fixtures(self):
        """Each rule id maps to a fixture tree that exercises it."""
        fixture_dirs = {
            "DET001": "determinism", "DET002": "determinism",
            "DET003": "rng_escape",
            "NUM001": "numeric", "NUM002": "numeric", "NUM003": "numeric",
            "LAY001": "layering",
            "CON001": "contracts", "CON002": "contracts",
            "CON003": "contracts",
            "HYG001": "hygiene", "HYG002": "hygiene", "HYG003": "hygiene",
            "OBS001": "observability",
            "PERF001": "performance",
            "RACE001": "concurrency", "RACE002": "concurrency",
            "PURE001": "purity",
        }
        assert set(fixture_dirs) == {rule.id for rule in all_rules()}
        for rule_id, subdir in sorted(fixture_dirs.items()):
            root = FIXTURES / subdir
            assert root.is_dir(), f"{rule_id}: missing fixture dir {subdir}"
            assert list(root.rglob("*.py")), f"{rule_id}: empty {subdir}"
