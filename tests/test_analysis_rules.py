"""Per-rule tests for the static analyzer.

Each rule family has known-good and known-bad fixture snippets under
``tests/fixtures/analysis/``; the tests assert the *exact* rule ids and
line numbers that fire (and that the good snippets stay silent).
"""

from pathlib import Path

import pytest

from repro.analysis import (
    Baseline,
    BaselineEntry,
    BaselineError,
    Severity,
    all_rules,
    analyze_paths,
    get_rule,
    render_json,
    render_text,
)

FIXTURES = Path(__file__).parent / "fixtures" / "analysis"


def run(subdir, **kwargs):
    root = FIXTURES / subdir
    return analyze_paths([root], root=root, **kwargs)


def hits(report):
    return [(f.rule, f.path, f.line) for f in report.findings]


class TestDeterminism:
    def test_bad_fixtures_fire_exactly(self):
        assert hits(run("determinism")) == [
            ("DET001", "bad_global_state.py", 7),
            ("DET001", "bad_global_state.py", 8),
            ("DET001", "bad_global_state.py", 12),
            ("DET002", "bad_unseeded.py", 7),
            ("DET002", "bad_unseeded.py", 8),
            ("DET002", "bad_unseeded.py", 9),
            ("DET002", "bad_unseeded.py", 10),
        ]

    def test_good_fixture_is_silent(self):
        report = run("determinism")
        assert not [f for f in report.findings if f.path == "good.py"]

    def test_test_code_is_exempt(self, tmp_path):
        test_file = tmp_path / "test_sampler.py"
        test_file.write_text(
            '"""Doc."""\n\nimport numpy as np\n\nnp.random.seed(1)\n'
        )
        report = analyze_paths([tmp_path], root=tmp_path)
        assert report.findings == []


class TestNumeric:
    def test_bad_fixtures_fire_exactly(self):
        assert hits(run("numeric")) == [
            ("NUM002", "bad_division.py", 5),
            ("NUM002", "bad_division.py", 10),
            ("NUM001", "bad_float_eq.py", 5),
            ("NUM001", "bad_float_eq.py", 9),
            ("NUM001", "bad_float_eq.py", 13),
            ("NUM003", "bad_log_sqrt.py", 9),
            ("NUM003", "bad_log_sqrt.py", 13),
        ]

    def test_guarded_code_is_silent(self):
        report = run("numeric")
        assert not [f for f in report.findings if f.path == "good.py"]


class TestLayering:
    def test_upward_imports_fire_exactly(self):
        assert hits(run("layering")) == [
            ("LAY001", "simulator/bad_upward.py", 3),
            ("LAY001", "simulator/bad_upward.py", 4),
        ]

    def test_type_checking_and_lazy_imports_are_exempt(self):
        report = run("layering")
        assert not [
            f for f in report.findings if "good_downward" in f.path
        ]

    def test_package_init_relative_import_resolves_in_package(self):
        # ``obs/__init__.py`` does ``from .metrics import ...``: that is
        # obs's own submodule, not the ranked top-level ``metrics``.
        report = run("layering")
        assert not [f for f in report.findings if "__init__" in f.path]


class TestContracts:
    def test_dead_phantom_and_unknown_fire_exactly(self):
        assert hits(run("contracts/bad")) == [
            ("CON001", "designspace/table1.py", 12),
            ("CON003", "regression/presets.py", 7),
            ("CON002", "simulator/config.py", 7),
        ]

    def test_consistent_tree_is_silent(self):
        assert hits(run("contracts/good")) == []

    def test_contract_rules_skip_partial_trees(self):
        # Only the regression side present: no design space to check against.
        root = FIXTURES / "contracts" / "bad" / "regression"
        report = analyze_paths([root], root=root)
        assert [f for f in report.findings if f.rule.startswith("CON")] == []


class TestHygiene:
    def test_bad_fixture_fires_exactly(self):
        assert hits(run("hygiene")) == [
            ("HYG001", "bad.py", 7),
            ("HYG002", "bad.py", 14),
            ("HYG003", "bad.py", 18),
        ]

    def test_good_fixture_is_silent(self):
        report = run("hygiene")
        assert not [f for f in report.findings if f.path == "good.py"]


class TestObservability:
    def test_bad_fixture_fires_exactly(self):
        assert hits(run("observability")) == [
            ("OBS001", "harness/bad_raw_clock.py", 8),
            ("OBS001", "harness/bad_raw_clock.py", 10),
            ("OBS001", "harness/bad_raw_clock.py", 14),
            ("OBS001", "harness/bad_raw_clock.py", 16),
        ]

    def test_obs_timing_and_other_packages_are_silent(self):
        report = run("observability")
        assert not [f for f in report.findings if "good" in f.path]


class TestPerformance:
    def test_bad_fixtures_fire_exactly(self):
        assert hits(run("performance")) == [
            ("PERF001", "harness/bad_scalar_loop.py", 7),
            ("PERF001", "harness/bad_scalar_loop.py", 12),
            ("PERF001", "harness/bad_scalar_loop.py", 17),
            ("PERF001", "studies/bad_study_loop.py", 5),
        ]

    def test_batched_single_shot_and_other_packages_are_silent(self):
        report = run("performance")
        assert not [f for f in report.findings if "good" in f.path]


class TestAcceptanceTriple:
    def test_seeded_violations_yield_exactly_three_findings(self):
        """The ISSUE acceptance check: one DET001, one LAY001, one HYG001."""
        assert hits(run("triple")) == [
            ("HYG001", "cache.py", 7),
            ("DET001", "seeding.py", 5),
            ("LAY001", "simulator/timing.py", 3),
        ]


class TestBaseline:
    def test_baseline_suppresses_matching_findings(self):
        report = run("triple")
        entry = BaselineEntry(
            rule="HYG001",
            path="cache.py",
            context="except:  # noqa: E722 (deliberate)",
            reason="fixture",
        )
        filtered = run("triple", baseline=Baseline(entries=[entry]))
        assert len(filtered.findings) == len(report.findings) - 1
        assert [f for f, _ in filtered.suppressed][0].rule == "HYG001"
        assert filtered.stale_baseline == []

    def test_stale_entries_are_reported(self):
        entry = BaselineEntry(
            rule="DET001", path="no_such.py", context="", reason="gone"
        )
        report = run("triple", baseline=Baseline(entries=[entry]))
        assert report.stale_baseline == [entry]
        assert report.exit_code(strict=True) == 1

    def test_unselected_rules_do_not_age_entries_stale(self):
        # A baseline entry for DET001 must not be "stale" when only
        # HYG001 ran — the rule that could match it never executed.
        entry = BaselineEntry(
            rule="DET001",
            path="seeding.py",
            context="np.random.seed(7)",
            reason="fixture",
        )
        report = run("triple", rules=["HYG001"], baseline=Baseline(entries=[entry]))
        assert report.stale_baseline == []
        assert report.suppressed == []

    def test_roundtrip_through_file(self, tmp_path):
        report = run("triple")
        baseline = Baseline.from_findings(report.findings, reason="accepted")
        path = tmp_path / "baseline.json"
        baseline.save(path)
        reloaded = Baseline.load(path)
        assert len(reloaded.entries) == 3
        clean = run("triple", baseline=reloaded)
        assert clean.findings == []
        assert clean.exit_code(strict=True) == 0

    def test_malformed_baseline_raises(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text('{"entries": [{"path": "x.py"}]}')
        with pytest.raises(BaselineError):
            Baseline.load(path)

    def test_missing_baseline_is_empty(self, tmp_path):
        assert Baseline.load(tmp_path / "nope.json").entries == []


class TestRunnerAndReporting:
    def test_exit_codes_by_severity(self):
        report = run("numeric")  # warnings only
        assert report.exit_code() == 0
        assert report.exit_code(strict=True) == 1
        errors = run("hygiene")  # contains an error (HYG001)
        assert errors.exit_code() == 1

    def test_rule_selection(self):
        report = run("hygiene", rules=["HYG001"])
        assert [f.rule for f in report.findings] == ["HYG001"]
        with pytest.raises(KeyError):
            run("hygiene", rules=["NOPE999"])

    def test_syntax_error_becomes_parse_finding(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def broken(:\n")
        report = analyze_paths([tmp_path], root=tmp_path)
        assert [f.rule for f in report.findings] == ["PARSE"]
        assert report.findings[0].severity is Severity.ERROR

    def test_renderers_cover_findings(self):
        report = run("triple")
        text = render_text(report)
        assert "seeding.py:5" in text and "DET001" in text
        assert "3 findings" in text
        import json

        payload = json.loads(render_json(report))
        assert payload["summary"]["error"] == 3
        assert {f["rule"] for f in payload["findings"]} == {
            "DET001", "LAY001", "HYG001",
        }

    def test_registry_is_complete_and_documented(self):
        rules = all_rules()
        ids = [rule.id for rule in rules]
        assert ids == sorted(ids)
        expected = {
            "DET001", "DET002", "NUM001", "NUM002", "NUM003",
            "LAY001", "CON001", "CON002", "CON003",
            "HYG001", "HYG002", "HYG003", "OBS001", "PERF001",
        }
        assert set(ids) == expected
        for rule in rules:
            assert rule.description, rule.id
            assert rule.scope in ("module", "project"), rule.id
        assert get_rule("LAY001").severity is Severity.ERROR
