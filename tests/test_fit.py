"""Tests for OLS fitting and prediction."""

import numpy as np
import pytest

from repro.regression import (
    FitError,
    InteractionTerm,
    LinearTerm,
    LogTransform,
    ModelSpec,
    SplineTerm,
    SqrtTransform,
    fit_ols,
)


def linear_data(n=200, seed=0, noise=0.0):
    rng = np.random.default_rng(seed)
    x1 = rng.uniform(0, 10, n)
    x2 = rng.uniform(-5, 5, n)
    y = 3.0 + 2.0 * x1 - 1.5 * x2 + noise * rng.standard_normal(n)
    return {"x1": x1, "x2": x2, "y": y}


class TestExactRecovery:
    def test_recovers_linear_coefficients(self):
        data = linear_data()
        spec = ModelSpec("y", (LinearTerm("x1"), LinearTerm("x2")))
        model = fit_ols(spec, data)
        table = model.coefficient_table()
        assert table["(intercept)"] == pytest.approx(3.0, abs=1e-8)
        assert table["x1"] == pytest.approx(2.0, abs=1e-8)
        assert table["x2"] == pytest.approx(-1.5, abs=1e-8)

    def test_r_squared_one_on_exact_data(self):
        data = linear_data()
        model = fit_ols(ModelSpec("y", (LinearTerm("x1"), LinearTerm("x2"))), data)
        assert model.r_squared == pytest.approx(1.0)

    def test_interaction_recovery(self):
        rng = np.random.default_rng(3)
        x1 = rng.uniform(0, 4, 300)
        x2 = rng.uniform(0, 4, 300)
        data = {"x1": x1, "x2": x2, "y": 1.0 + 0.5 * x1 * x2}
        spec = ModelSpec(
            "y", (LinearTerm("x1"), LinearTerm("x2"), InteractionTerm("x1", "x2"))
        )
        table = fit_ols(spec, data).coefficient_table()
        assert table["x1*x2"] == pytest.approx(0.5, abs=1e-8)

    def test_sqrt_transform_round_trip(self):
        rng = np.random.default_rng(4)
        x = rng.uniform(1, 5, 200)
        y = (2.0 + 0.7 * x) ** 2
        spec = ModelSpec("y", (LinearTerm("x"),), transform=SqrtTransform())
        model = fit_ols(spec, {"x": x, "y": y})
        prediction = model.predict({"x": np.array([3.0])})
        assert prediction[0] == pytest.approx((2.0 + 2.1) ** 2, rel=1e-6)

    def test_log_transform_round_trip(self):
        rng = np.random.default_rng(5)
        x = rng.uniform(0, 2, 200)
        y = np.exp(1.0 + 0.5 * x)
        spec = ModelSpec("y", (LinearTerm("x"),), transform=LogTransform())
        model = fit_ols(spec, {"x": x, "y": y})
        prediction = model.predict({"x": np.array([2.0])})
        assert prediction[0] == pytest.approx(np.exp(2.0), rel=1e-6)

    def test_spline_fits_smooth_nonlinearity_better_than_line(self):
        rng = np.random.default_rng(6)
        x = rng.uniform(0, 10, 500)
        y = np.sin(x / 2.5) + 0.05 * rng.standard_normal(500)
        data = {"x": x, "y": y}
        linear = fit_ols(ModelSpec("y", (LinearTerm("x"),)), data)
        spline = fit_ols(ModelSpec("y", (SplineTerm("x", knots=5),)), data)
        assert spline.r_squared > linear.r_squared + 0.2


class TestPredictionShape:
    def test_predict_matches_input_length(self):
        data = linear_data()
        model = fit_ols(ModelSpec("y", (LinearTerm("x1"), LinearTerm("x2"))), data)
        out = model.predict({"x1": np.arange(5.0), "x2": np.zeros(5)})
        assert out.shape == (5,)

    def test_predict_transformed_scale(self):
        rng = np.random.default_rng(7)
        x = rng.uniform(1, 4, 100)
        y = (1.0 + x) ** 2
        spec = ModelSpec("y", (LinearTerm("x"),), transform=SqrtTransform())
        model = fit_ols(spec, {"x": x, "y": y})
        z = model.predict_transformed({"x": np.array([2.0])})
        assert z[0] == pytest.approx(3.0, rel=1e-6)


class TestErrors:
    def test_missing_response(self):
        with pytest.raises(FitError, match="response"):
            fit_ols(ModelSpec("z", (LinearTerm("x1"),)), linear_data())

    def test_underdetermined(self):
        data = {"x": np.arange(3.0), "y": np.arange(3.0)}
        spec = ModelSpec("y", (SplineTerm("x", knots=3),))
        with pytest.raises(FitError, match="observations"):
            fit_ols(spec, data)

    def test_two_dimensional_response_rejected(self):
        data = {"x": np.arange(10.0), "y": np.zeros((10, 2))}
        with pytest.raises(FitError):
            fit_ols(ModelSpec("y", (LinearTerm("x"),)), data)

    def test_spec_requires_terms(self):
        with pytest.raises(Exception):
            ModelSpec("y", ())


class TestStatistics:
    def test_noise_degrades_r_squared(self):
        clean = fit_ols(
            ModelSpec("y", (LinearTerm("x1"), LinearTerm("x2"))), linear_data()
        )
        noisy = fit_ols(
            ModelSpec("y", (LinearTerm("x1"), LinearTerm("x2"))),
            linear_data(noise=3.0),
        )
        assert noisy.r_squared < clean.r_squared

    def test_adjusted_r_squared_below_r_squared(self):
        model = fit_ols(
            ModelSpec("y", (LinearTerm("x1"), LinearTerm("x2"))),
            linear_data(noise=2.0),
        )
        assert model.adjusted_r_squared < model.r_squared

    def test_degrees_of_freedom(self):
        model = fit_ols(
            ModelSpec("y", (LinearTerm("x1"), LinearTerm("x2"))), linear_data(n=50)
        )
        assert model.degrees_of_freedom == 50 - 3

    def test_residual_variance_tracks_noise(self):
        model = fit_ols(
            ModelSpec("y", (LinearTerm("x1"), LinearTerm("x2"))),
            linear_data(n=2000, noise=2.0),
        )
        assert np.sqrt(model.residual_variance) == pytest.approx(2.0, rel=0.1)

    def test_standard_errors_positive_with_noise(self):
        model = fit_ols(
            ModelSpec("y", (LinearTerm("x1"), LinearTerm("x2"))),
            linear_data(noise=1.0),
        )
        assert (model.standard_errors() > 0).all()


class TestSpecHelpers:
    def test_predictors_deduplicated(self):
        spec = ModelSpec(
            "y",
            (LinearTerm("a"), SplineTerm("b"), InteractionTerm("a", "b")),
        )
        assert spec.predictors == ("a", "b")

    def test_with_terms(self):
        spec = ModelSpec("y", (LinearTerm("a"),), name="orig")
        other = spec.with_terms((LinearTerm("b"),), name="alt")
        assert other.response == "y"
        assert other.name == "alt"
        assert other.terms[0].name == "b"

    def test_describe_mentions_transform(self):
        spec = ModelSpec("y", (LinearTerm("a"),), transform=SqrtTransform())
        assert "sqrt(y)" in spec.describe()
