"""Smoke + content tests for the experiment registry."""

import pytest

from repro.experiments import EXPERIMENTS, run_experiment


ALL_IDS = (
    "T1", "F1", "F2", "F3", "F4", "T2", "T3", "F5a", "F5b",
    "F6", "F7", "T4", "F8", "F9a", "F9b",
    "X1", "X2", "X3", "X4", "X5", "X6", "X7", "X8", "X9", "X10", "X11", "X12",
)


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        assert tuple(EXPERIMENTS) == ALL_IDS

    def test_unknown_id(self, ctx):
        with pytest.raises(KeyError, match="choices"):
            run_experiment("F99", ctx=ctx)

    def test_runners_have_docstrings(self):
        for runner in EXPERIMENTS.values():
            assert runner.__doc__


@pytest.mark.parametrize("experiment_id", ALL_IDS)
def test_every_experiment_runs(ctx, experiment_id):
    result = run_experiment(experiment_id, ctx=ctx)
    assert result.id == experiment_id
    assert result.text.strip()
    assert result.data is not None


class TestContent:
    def test_t1_reports_paper_size(self, ctx):
        result = run_experiment("T1", ctx=ctx)
        assert result.data["size"] == 375_000
        assert "375,000" in result.text

    def test_f1_medians_for_all_benchmarks(self, ctx):
        result = run_experiment("F1", ctx=ctx)
        medians = result.data["perf_medians"]
        assert set(medians) == set(ctx.benchmarks) | {"overall"}
        assert 0 < medians["overall"] < 40  # percent, loose at test scale

    def test_t2_rows_per_benchmark(self, ctx):
        result = run_experiment("T2", ctx=ctx)
        assert len(result.data["rows"]) == len(ctx.benchmarks)

    def test_f5a_line_and_boxplots(self, ctx):
        result = run_experiment("F5a", ctx=ctx)
        summary = result.data["summary"]
        assert len(summary.depths) == 7
        assert "12FO4" in result.text

    def test_f9a_average_at_k0_is_one(self, ctx):
        result = run_experiment("F9a", ctx=ctx)
        sweep = result.data["sweep"]
        assert sweep.average[0] == pytest.approx(1.0)

    def test_x1_paper_model_beats_linear(self, ctx):
        result = run_experiment("X1", ctx=ctx)
        paper = result.data["paper (splines+interactions)"]
        linear = result.data["linear only"]
        assert paper["perf"] < linear["perf"]

    def test_x2_reports_increasing_sample_sizes(self, ctx):
        result = run_experiment("X2", ctx=ctx)
        sizes = sorted(result.data)
        assert len(sizes) >= 2
        assert all(isinstance(s, int) for s in sizes)

    def test_x4_bips3w_more_invariant_than_bipsw(self, ctx):
        result = run_experiment("X4", ctx=ctx)
        spreads = result.data["spreads"]
        assert spreads["bips3_per_watt"] < spreads["bips_per_watt"]
        assert 0.0 < result.data["static_share"] < 1.0

    def test_x5_covers_three_samplers(self, ctx):
        result = run_experiment("X5", ctx=ctx)
        assert len(result.data) == 3
        for medians in result.data.values():
            assert all(0 < m < 50 for m in medians.values())

    def test_x6_regression_faster_than_ann(self, ctx):
        result = run_experiment("X6", ctx=ctx)
        for row in result.data.values():
            assert row["regression_fit_s"] < row["ann_fit_s"]

    def test_x7_ooo_gain_above_one(self, ctx):
        result = run_experiment("X7", ctx=ctx)
        for row in result.data.values():
            assert row["ooo_gain"] > 1.0
            assert row["r_squared"] > 0.7

    def test_x8_streaming_benchmarks_gain_most(self, ctx):
        result = run_experiment("X8", ctx=ctx)
        assert result.data["applu"]["speedup"] > result.data["gzip"]["speedup"]
        for row in result.data.values():
            assert row["speedup"] >= 1.0

    def test_x9_depth_conclusion_stable(self, ctx):
        result = run_experiment("X9", ctx=ctx)
        assert result.data["depth"].within_one_level >= 0.5
