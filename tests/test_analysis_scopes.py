"""Direct tests for ``analysis/scopes.py`` and the context alias maps.

Both feed the dataflow call-graph resolution: the guard-sensitive scope
index keeps the NUM rules quiet on checked code, and the alias maps are
what lets a dotted call target resolve back to its defining module —
including through relative imports and ``import a.b as c`` renames.
"""

import ast
from pathlib import Path

from repro.analysis.context import (
    ModuleContext,
    _collect_aliases,
    _relative_base,
    build_module_context,
    module_name,
)
from repro.analysis.scopes import ScopeIndex


def _ctx(tmp_path, relparts, source):
    path = tmp_path.joinpath(*relparts)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source)
    ctx, error = build_module_context(path, tmp_path)
    assert error is None, error
    return ctx


class TestAliasMaps:
    def test_plain_and_renamed_imports(self):
        aliases = _collect_aliases(ast.parse(
            "import numpy\n"
            "import numpy as np\n"
            "import os.path\n"
            "import xml.etree.ElementTree as ET\n"
        ))
        assert aliases["numpy"] == "numpy"
        assert aliases["np"] == "numpy"
        # Bare ``import a.b`` binds the *root* name a.
        assert aliases["os"] == "os"
        # ``import a.b as c`` binds c to the full dotted target.
        assert aliases["ET"] == "xml.etree.ElementTree"

    def test_from_imports_and_renames(self):
        aliases = _collect_aliases(ast.parse(
            "from numpy import random as rnd\n"
            "from os.path import join\n"
        ))
        assert aliases["rnd"] == "numpy.random"
        assert aliases["join"] == "os.path.join"

    def test_star_imports_bind_nothing(self):
        aliases = _collect_aliases(ast.parse("from numpy import *\n"))
        assert aliases == {}

    def test_relative_import_in_plain_module(self):
        # repro.harness.widget doing ``from ..obs.metrics import x``.
        aliases = _collect_aliases(
            ast.parse("from ..obs.metrics import isolated_registry\n"),
            module="repro.harness.widget",
            is_package=False,
        )
        assert aliases["isolated_registry"] == (
            "repro.obs.metrics.isolated_registry"
        )

    def test_relative_import_in_package_init(self):
        # A package __init__ anchors level 1 at the package itself.
        aliases = _collect_aliases(
            ast.parse("from .metrics import counter\n"),
            module="repro.obs",
            is_package=True,
        )
        assert aliases["counter"] == "repro.obs.metrics.counter"

    def test_relative_import_climbing_past_top_is_dropped(self):
        aliases = _collect_aliases(
            ast.parse("from ...nowhere import thing\n"),
            module="repro.obs",
            is_package=False,
        )
        assert aliases == {}

    def test_single_dot_sibling_import(self):
        aliases = _collect_aliases(
            ast.parse("from . import metrics\n"),
            module="repro.obs.tracing",
            is_package=False,
        )
        assert aliases["metrics"] == "repro.obs.metrics"

    def test_build_module_context_wires_module_and_aliases(self, tmp_path):
        ctx = _ctx(
            tmp_path,
            ("src", "repro", "harness", "widget.py"),
            "from ..obs.metrics import counter\n",
        )
        assert ctx.module == "repro.harness.widget"
        assert ctx.aliases["counter"] == "repro.obs.metrics.counter"

    def test_resolve_through_aliases(self):
        tree = ast.parse("import numpy as np\nnp.random.seed(0)\n")
        ctx = ModuleContext(
            path=Path("m.py"), relpath="m.py", module="m", package="",
            source="", lines=[], tree=tree, is_test=False,
            aliases=_collect_aliases(tree),
        )
        call = tree.body[1].value
        assert ctx.resolve(call.func) == "numpy.random.seed"
        # A local name that is not imported resolves to nothing.
        other = ast.parse("local.seed(0)").body[0].value
        assert ctx.resolve(other.func) is None

    def test_relative_base_arithmetic(self):
        assert _relative_base("a.b.c", False, 1) == "a.b"
        assert _relative_base("a.b.c", False, 2) == "a"
        assert _relative_base("a.b.c", False, 3) is None
        assert _relative_base("a.b", True, 1) == "a.b"
        assert _relative_base("a.b", True, 2) == "a"
        assert _relative_base("top", False, 1) is None

    def test_module_name_variants(self):
        assert module_name("src/repro/obs/metrics.py") == "repro.obs.metrics"
        assert module_name("src/repro/obs/__init__.py") == "repro.obs"
        assert module_name("harness/state.py") == "harness.state"


class TestScopeIndex:
    def _index(self, source):
        return ScopeIndex(ast.parse(source))

    def _function_scope(self, index, name):
        for scope in index.scopes:
            if getattr(scope.node, "name", None) == name:
                return scope
        raise AssertionError(f"no scope for {name}")

    def test_if_guard_marks_names(self):
        index = self._index(
            "def f(n):\n"
            "    if n > 0:\n"
            "        return 1 / n\n"
            "    return 0.0\n"
        )
        scope = self._function_scope(index, "f")
        assert scope.is_guarded("n")
        assert not scope.is_guarded("m")

    def test_assert_and_comprehension_guards(self):
        index = self._index(
            "def f(xs, d):\n"
            "    assert d != 0\n"
            "    return [x / d for x in xs if x]\n"
        )
        scope = self._function_scope(index, "f")
        assert scope.is_guarded("d")
        assert scope.is_guarded("x")

    def test_clamp_and_validator_calls_guard_arguments(self):
        index = self._index(
            "def f(y, z):\n"
            "    y = max(y, 1e-9)\n"
            "    _check_positive(z)\n"
            "    return y + z\n"
        )
        scope = self._function_scope(index, "f")
        assert scope.is_guarded("y")
        assert scope.is_guarded("z")

    def test_nested_function_inherits_enclosing_guards(self):
        index = self._index(
            "def outer(n):\n"
            "    if n:\n"
            "        def inner(x):\n"
            "            return x / n\n"
            "        return inner\n"
            "    return None\n"
        )
        inner = self._function_scope(index, "inner")
        assert inner.is_guarded("n")
        # The module scope saw no guard on n.
        assert not index.scopes[0].is_guarded("n")

    def test_domain_error_handler_guards_everything(self):
        index = self._index(
            "def f(a, b):\n"
            "    try:\n"
            "        return a / b\n"
            "    except ZeroDivisionError:\n"
            "        return 0.0\n"
        )
        scope = self._function_scope(index, "f")
        assert scope.handles_domain_errors
        assert scope.is_guarded("anything")

    def test_assigned_value_lookup_walks_parents(self):
        index = self._index(
            "EPS = 1e-9\n"
            "def f(x):\n"
            "    y = x + EPS\n"
            "    return y\n"
        )
        scope = self._function_scope(index, "f")
        assert isinstance(scope.assigned_value("y"), ast.BinOp)
        assert isinstance(scope.assigned_value("EPS"), ast.Constant)
        assert scope.assigned_value("nope") is None

    def test_scope_of_maps_nodes_to_nearest_function(self):
        tree = ast.parse(
            "def f():\n"
            "    return 1\n"
        )
        index = ScopeIndex(tree)
        ret = tree.body[0].body[0]
        assert index.scope_of(ret).node is tree.body[0]
