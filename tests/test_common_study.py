"""Tests for StudyContext and PredictionTable."""

import numpy as np
import pytest

from repro.studies.common import PredictionTable, StudyContext


class TestPredictionTable:
    def make(self, ctx, count=5):
        points = ctx.exploration_points()[:count]
        return ctx.predict_points("gzip", points)

    def test_lengths_align(self, ctx):
        table = self.make(ctx)
        assert len(table) == 5
        assert table.bips.shape == (5,)
        assert table.watts.shape == (5,)

    def test_delay_consistent_with_bips(self, ctx):
        table = self.make(ctx)
        manual = table.ref_instructions / (table.bips * 1e9)
        assert table.delay == pytest.approx(manual)

    def test_efficiency_consistent(self, ctx):
        table = self.make(ctx)
        assert table.efficiency == pytest.approx(table.bips**3 / table.watts)

    def test_subset(self, ctx):
        table = self.make(ctx)
        subset = table.subset([0, 3])
        assert len(subset) == 2
        assert subset.points[1] == table.points[3]
        assert subset.bips[1] == table.bips[3]

    def test_mismatched_columns_rejected(self, ctx):
        points = ctx.exploration_points()[:3]
        with pytest.raises(ValueError):
            PredictionTable(
                benchmark="x",
                points=points,
                bips=np.ones(2),
                watts=np.ones(3),
                ref_instructions=1e9,
            )


class TestStudyContext:
    def test_exploration_points_respect_limit(self, ctx):
        points = ctx.exploration_points()
        assert len(points) == ctx.scale.exploration_limit

    def test_exploration_points_memoized(self, ctx):
        assert ctx.exploration_points() is ctx.exploration_points()

    def test_exploration_points_in_exploration_space(self, ctx):
        for point in ctx.exploration_points()[:50]:
            assert point in ctx.exploration_space

    def test_per_depth_points_balanced(self, ctx):
        points = ctx.per_depth_points()
        depths = [p["depth"] for p in points]
        from collections import Counter

        counts = Counter(depths)
        assert set(counts) == set(ctx.exploration_space.parameter("depth").values)
        assert len(set(counts.values())) == 1  # equal strata

    def test_prediction_tables_memoized(self, ctx):
        assert ctx.predict_exploration("gzip") is ctx.predict_exploration("gzip")

    def test_predictions_positive(self, ctx):
        table = ctx.predict_exploration("mcf")
        assert (table.bips > 0).all()
        assert (table.watts > 0).all()

    def test_baseline_in_exploration_space(self, ctx):
        assert ctx.baseline in ctx.exploration_space

    def test_model_accessor(self, ctx):
        assert ctx.model("gzip", "bips").spec.response == "bips"
        assert ctx.model("gzip", "watts").spec.response == "watts"

    def test_simulate_uses_scale_trace_length(self, ctx):
        result = ctx.simulate("gzip", ctx.baseline)
        assert result.instructions == ctx.scale.trace_length


class TestSimulatorFacadeMore:
    def test_simulate_many(self, ctx):
        from repro.workloads import generate_trace, get_profile

        trace = generate_trace(get_profile("gzip"), 800, seed=2)
        points = ctx.exploration_points()[:3]
        results = ctx.simulator.simulate_many(
            ctx.exploration_space, points, trace
        )
        assert len(results) == 3
        assert all(r.bips > 0 for r in results)
