"""Figure 5b — d-L1 sizes among 95th-percentile designs.

Regenerates the artifact's rows/series (printed) and times the study code
behind it; the campaign and model fit are session-shared and cached.
"""


def test_f5b(run_paper_experiment):
    result = run_paper_experiment("F5b")
    assert result.id == "F5b"
