"""Table 3 — the POWER4-like baseline architecture.

Regenerates the artifact's rows/series (printed) and times the study code
behind it; the campaign and model fit are session-shared and cached.
"""


def test_t3(run_paper_experiment):
    result = run_paper_experiment("T3")
    assert result.id == "T3"
