"""Observability overhead: instrumented vs uninstrumented sweep throughput.

Times the same full-exploration-space sweep (262,500 designs at ci scale)
three ways:

- **off** — no trace sink configured: spans still measure but nothing is
  written, and the metrics registry counts as always;
- **trace** — a :class:`~repro.obs.tracing.TraceSink` attached via
  ``configure_tracing`` (fsync off, the default), so every block span is
  checksummed and appended to JSONL;
- **trace+fsync** — the worst case: one ``fsync`` per record.

Asserts the default-configuration overhead stays under the 10% acceptance
ceiling and writes ``BENCH_obs.json`` with points/sec per mode, the
overhead ratios, and the trace size per span.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.designspace import exploration_space
from repro.harness.sweep import (
    ParetoFrontierReducer,
    SpaceSweepSource,
    TopKReducer,
    run_sweep,
)
from repro.obs import configure_tracing, disable_tracing, read_trace

REPEATS = 3
OVERHEAD_CEILING = 1.10
RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_obs.json"


def _sweep_once(predictor, source):
    return run_sweep(
        predictor,
        source,
        [ParetoFrontierReducer(bins=50), TopKReducer(metric="efficiency", k=1)],
    )


def _best_of(predictor, source, trace_path=None, fsync=False):
    best = None
    for i in range(REPEATS):
        if trace_path is not None:
            configure_tracing(f"{trace_path}.{i}", fsync=fsync)
        started = time.perf_counter()
        _sweep_once(predictor, source)
        elapsed = time.perf_counter() - started
        if trace_path is not None:
            disable_tracing()
        if best is None or elapsed < best:
            best = elapsed
    return best


def test_observability_overhead(ctx, bench_scale, tmp_path):
    predictor = ctx.predictor("gzip")
    source = SpaceSweepSource(exploration_space())
    n = len(source)
    _sweep_once(predictor, source)  # warm caches outside the timed region

    off = _best_of(predictor, source)
    traced = _best_of(predictor, source, trace_path=tmp_path / "t")
    synced = _best_of(
        predictor, source, trace_path=tmp_path / "s", fsync=True
    )

    trace_file = f"{tmp_path / 't'}.0"
    records = read_trace(trace_file, strict=True)
    spans = [r for r in records if r["kind"] == "span"]
    trace_bytes = Path(trace_file).stat().st_size

    record = {
        "scale": bench_scale.name,
        "n_points": n,
        "repeats": REPEATS,
        "overhead_ceiling": OVERHEAD_CEILING,
        "off_seconds": off,
        "trace_seconds": traced,
        "trace_fsync_seconds": synced,
        "off_points_per_second": n / off,
        "trace_points_per_second": n / traced,
        "trace_overhead": traced / off,
        "trace_fsync_overhead": synced / off,
        "spans_per_sweep": len(spans),
        "trace_bytes_per_span": trace_bytes / max(1, len(records)),
    }
    RESULT_PATH.write_text(json.dumps(record, indent=2) + "\n")
    print()
    print(
        f"   off: {n / off:>12,.0f} pts/s"
        f"   traced: {n / traced:>12,.0f} pts/s"
        f"   overhead {traced / off - 1:+.1%}"
        f"   (fsync {synced / off - 1:+.1%})"
    )
    print(
        f"{len(spans)} spans/sweep, "
        f"{record['trace_bytes_per_span']:.0f} bytes/record; "
        f"wrote {RESULT_PATH.name}"
    )
    assert traced <= off * OVERHEAD_CEILING, (
        f"tracing overhead {traced / off - 1:.1%} exceeds "
        f"{OVERHEAD_CEILING - 1:.0%} (off {off:.3f}s, traced {traced:.3f}s)"
    )
