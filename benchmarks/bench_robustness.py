"""X9 — bootstrap robustness of study conclusions.

Regenerates the artifact's rows/series (printed) and times the study code
behind it; the campaign and model fit are session-shared and cached.
"""


def test_x9(run_paper_experiment):
    result = run_paper_experiment("X9")
    assert result.id == "X9"
