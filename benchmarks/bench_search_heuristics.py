"""X3 — regression-guided heuristic search vs exhaustive prediction.

Regenerates the artifact's rows/series (printed) and times the study code
behind it; the campaign and model fit are session-shared and cached.
"""


def test_x3(run_paper_experiment):
    result = run_paper_experiment("X3")
    assert result.id == "X3"
