"""Figure 9b — simulated efficiency gains vs cluster count.

Regenerates the artifact's rows/series (printed) and times the study code
behind it; the campaign and model fit are session-shared and cached.
"""


def test_f9b(run_paper_experiment):
    result = run_paper_experiment("F9b")
    assert result.id == "F9b"
