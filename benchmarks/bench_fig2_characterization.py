"""Figure 2 — predicted delay/power characterization of the space.

Regenerates the artifact's rows/series (printed) and times the study code
behind it; the campaign and model fit are session-shared and cached.
"""


def test_f2(run_paper_experiment):
    result = run_paper_experiment("F2")
    assert result.id == "F2"
