"""X11 — drop-one parameter importance per benchmark.

Regenerates the artifact's rows/series (printed) and times the study code
behind it; the campaign and model fit are session-shared and cached.
"""


def test_x11(run_paper_experiment):
    result = run_paper_experiment("X11")
    assert result.id == "X11"
