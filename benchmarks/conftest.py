"""Benchmark fixtures.

Each ``bench_*.py`` regenerates one paper artifact (see DESIGN.md's
experiment index) and reports its wall time via pytest-benchmark.  The
expensive shared phase — the simulation campaign and model fit — is built
once per session through the shared study context and cached on disk, so
individual benches time the *study* work, not the substrate.

Scale: ``REPRO_SCALE`` (ci/default/paper); benches default to ``ci`` so the
whole suite runs in seconds.  Run with ``REPRO_SCALE=default`` for the
EXPERIMENTS.md numbers.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import run_experiment, shared_context
from repro.harness import get_scale


@pytest.fixture(scope="session")
def bench_scale():
    return get_scale(os.environ.get("REPRO_SCALE", "ci"))


@pytest.fixture(scope="session")
def ctx(bench_scale):
    context = shared_context(bench_scale)
    # Force the campaign + model fit ahead of timing any experiment.
    context.models
    return context


@pytest.fixture
def run_paper_experiment(benchmark, ctx):
    """Benchmark one experiment once and emit its rendered output."""

    def run(experiment_id: str):
        result = benchmark.pedantic(
            run_experiment,
            args=(experiment_id,),
            kwargs={"ctx": ctx},
            rounds=1,
            iterations=1,
        )
        print()
        print(result.text)
        return result

    return run
