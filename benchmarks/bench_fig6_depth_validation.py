"""Figure 6 — predicted vs simulated efficiency for both analyses.

Regenerates the artifact's rows/series (printed) and times the study code
behind it; the campaign and model fit are session-shared and cached.
"""


def test_f6(run_paper_experiment):
    result = run_paper_experiment("F6")
    assert result.id == "F6"
