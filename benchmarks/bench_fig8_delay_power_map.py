"""Figure 8 — delay/power of optima vs compromises.

Regenerates the artifact's rows/series (printed) and times the study code
behind it; the campaign and model fit are session-shared and cached.
"""


def test_f8(run_paper_experiment):
    result = run_paper_experiment("F8")
    assert result.id == "F8"
