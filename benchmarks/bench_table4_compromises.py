"""Table 4 — K=4 compromise architectures.

Regenerates the artifact's rows/series (printed) and times the study code
behind it; the campaign and model fit are session-shared and cached.
"""


def test_t4(run_paper_experiment):
    result = run_paper_experiment("T4")
    assert result.id == "T4"
