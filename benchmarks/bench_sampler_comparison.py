"""X5 — UAR vs stratified vs Halton sampling.

Regenerates the artifact's rows/series (printed) and times the study code
behind it; the campaign and model fit are session-shared and cached.
"""


def test_x5(run_paper_experiment):
    result = run_paper_experiment("X5")
    assert result.id == "X5"
