"""Table 2 — bips^3/w maximizing per-benchmark architectures.

Regenerates the artifact's rows/series (printed) and times the study code
behind it; the campaign and model fit are session-shared and cached.
"""


def test_t2(run_paper_experiment):
    result = run_paper_experiment("T2")
    assert result.id == "T2"
