"""Sweep-engine throughput: blockwise engine vs the per-point path.

Times the same exhaustive characterization two ways for every benchmark:

- **per-point** — the pre-engine protocol: encode each design with
  :class:`~repro.designspace.DesignEncoder` (a python loop over points),
  predict the whole table at once, then reduce (frontier + argmax);
- **blockwise** — :func:`~repro.harness.sweep.run_sweep` with the
  streaming :class:`ParetoFrontierReducer` and :class:`TopKReducer`.

Asserts the two paths agree exactly (same frontier indices, same argmax
design) and that the engine clears a 3x throughput floor, then writes
``BENCH_sweep.json`` with points/sec, the speedup ratio, and peak
allocation footprints (tracemalloc, measured in separate untimed passes).
"""

from __future__ import annotations

import json
import time
import tracemalloc
from pathlib import Path

import numpy as np

from repro.designspace import DesignEncoder
from repro.harness.sweep import (
    ParetoFrontierReducer,
    PointSweepSource,
    SpaceSweepSource,
    TopKReducer,
    discretized_frontier,
    run_sweep,
)

REPEATS = 3
SPEEDUP_FLOOR = 3.0
RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_sweep.json"


def _per_point_pass(ctx, benchmark, points):
    """The seed implementation: per-point encode, whole-table reduce."""
    encoder = DesignEncoder(ctx.exploration_space)
    predictor = ctx.predictor(benchmark)
    matrix = encoder.encode(points)
    data = {
        name: matrix[:, j] for j, name in enumerate(encoder.feature_names)
    }
    bips, watts = predictor.predict(data)
    from repro.metrics import bips3_per_watt, delay_seconds

    delay = delay_seconds(bips, predictor.ref_instructions)
    efficiency = bips3_per_watt(bips, watts)
    frontier = discretized_frontier(delay, watts, bins=50)
    return frontier, int(efficiency.argmax())


def _blockwise_pass(ctx, benchmark, points):
    """The engine: fresh source (no cached matrices) + streaming reducers."""
    source = PointSweepSource(ctx.exploration_space, points)
    report = run_sweep(
        ctx.predictor(benchmark),
        source,
        [ParetoFrontierReducer(bins=50), TopKReducer(metric="efficiency", k=1)],
    )
    front, best = report.results
    return front.indices, int(best.indices[0])


def _timed(fn, *args):
    best = None
    result = None
    for _ in range(REPEATS):
        started = time.perf_counter()
        result = fn(*args)
        elapsed = time.perf_counter() - started
        if best is None or elapsed < best:
            best = elapsed
    return result, best


def _peak_bytes(fn, *args):
    tracemalloc.start()
    try:
        fn(*args)
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return int(peak)


def test_sweep_engine_throughput(ctx, bench_scale):
    ctx.models  # force the campaign + fit outside the timed region
    points = ctx.exploration_points()
    n = len(points)
    assert n > 0

    record = {
        "scale": bench_scale.name,
        "n_points": n,
        "repeats": REPEATS,
        "speedup_floor": SPEEDUP_FLOOR,
        "benchmarks": {},
    }
    ratios = []
    for benchmark in ctx.benchmarks:
        (old_frontier, old_best), old_elapsed = _timed(
            _per_point_pass, ctx, benchmark, points
        )
        (new_frontier, new_best), new_elapsed = _timed(
            _blockwise_pass, ctx, benchmark, points
        )

        # Numerical identity: same frontier designs, same optimum.
        assert np.array_equal(np.sort(old_frontier), np.sort(new_frontier))
        assert old_best == new_best

        old_pps = n / old_elapsed if old_elapsed > 0 else float("inf")
        new_pps = n / new_elapsed if new_elapsed > 0 else float("inf")
        ratio = new_pps / old_pps if old_pps > 0 else float("inf")
        ratios.append(ratio)
        record["benchmarks"][benchmark] = {
            "per_point_seconds": old_elapsed,
            "blockwise_seconds": new_elapsed,
            "per_point_points_per_second": old_pps,
            "blockwise_points_per_second": new_pps,
            "speedup": ratio,
            "per_point_peak_bytes": _peak_bytes(
                _per_point_pass, ctx, benchmark, points
            ),
            "blockwise_peak_bytes": _peak_bytes(
                _blockwise_pass, ctx, benchmark, points
            ),
        }

    record["mean_speedup"] = float(np.mean(ratios))
    record["min_speedup"] = float(np.min(ratios))
    RESULT_PATH.write_text(json.dumps(record, indent=2) + "\n")
    print()
    for benchmark, row in record["benchmarks"].items():
        print(
            f"{benchmark:>6s}: per-point {row['per_point_points_per_second']:>10,.0f} pts/s"
            f"  blockwise {row['blockwise_points_per_second']:>10,.0f} pts/s"
            f"  speedup {row['speedup']:.1f}x"
        )
    print(f"wrote {RESULT_PATH.name} (mean speedup {record['mean_speedup']:.1f}x)")
    assert record["mean_speedup"] >= SPEEDUP_FLOOR


def test_full_space_source_matches_point_source(ctx):
    """Mixed-radix full-space blocks encode identically to the point list.

    A small index subset of the exploration space is swept both ways with
    the same block decomposition; the predictions must agree bitwise, so
    paper-scale sweeps (which never materialize points) are
    interchangeable with list-backed sweeps.
    """
    from repro.harness.sweep import predict_source

    space = ctx.exploration_space
    benchmark = ctx.benchmarks[0]
    indices = np.arange(0, len(space), max(1, len(space) // 512), dtype=np.int64)
    space_source = SpaceSweepSource(space, indices)
    points = [space.point_at(int(i)) for i in indices]
    point_source = PointSweepSource(space, points)

    predictor = ctx.predictor(benchmark)
    bips_a, watts_a = predict_source(predictor, space_source, block_size=97)
    bips_b, watts_b = predict_source(predictor, point_source, block_size=97)
    assert np.array_equal(bips_a, bips_b)
    assert np.array_equal(watts_a, watts_b)
