"""X2 — training sample-size ablation.

Regenerates the artifact's rows/series (printed) and times the study code
behind it; the campaign and model fit are session-shared and cached.
"""


def test_x2(run_paper_experiment):
    result = run_paper_experiment("X2")
    assert result.id == "X2"
