"""Batched timing kernel throughput: simulate_batch vs the scalar loop.

Times the same block of design points two ways for every benchmark:

- **scalar** — the seed protocol: one :meth:`Simulator.simulate_point`
  call per design, each replaying the trace through the per-instruction
  python pipeline;
- **batch** — :meth:`Simulator.simulate_batch`, replaying the trace once
  with pipeline state carried as numpy arrays over the config axis.

Asserts the hard equivalence contract (identical cycles, ActivityCounts
and watts per design) and a 3x speedup floor at a batch of 64, then
writes ``BENCH_batchsim.json`` with per-benchmark timings, simulations
per second, and the speedup ratios.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.designspace import sample_uar, sampling_space
from repro.simulator import Simulator
from repro.workloads import BENCHMARK_NAMES, get_profile

REPEATS = 3
BATCH = 64
SPEEDUP_FLOOR = 3.0
RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_batchsim.json"


def _scalar_pass(simulator, space, points, trace):
    return [
        simulator.simulate_point(space, point, trace) for point in points
    ]


def _batch_pass(simulator, space, points, trace):
    return simulator.simulate_batch(space, points, trace)


def _timed(fn, *args):
    best = None
    result = None
    for _ in range(REPEATS):
        started = time.perf_counter()
        result = fn(*args)
        elapsed = time.perf_counter() - started
        if best is None or elapsed < best:
            best = elapsed
    return result, best


def test_batch_kernel_throughput(bench_scale):
    space = sampling_space()
    simulator = Simulator()
    points = sample_uar(space, BATCH, seed=bench_scale.seed + 11)

    record = {
        "scale": bench_scale.name,
        "trace_length": bench_scale.trace_length,
        "batch": BATCH,
        "repeats": REPEATS,
        "speedup_floor": SPEEDUP_FLOOR,
        "benchmarks": {},
    }
    ratios = []
    for benchmark in BENCHMARK_NAMES:
        trace = simulator.trace_for(
            get_profile(benchmark), bench_scale.trace_length,
            seed=bench_scale.seed,
        )
        # Prime trace-derived state (access streams, predictor replays,
        # branch-warming streams) so both passes time steady-state work.
        _scalar_pass(simulator, space, points[:1], trace)
        _batch_pass(simulator, space, points[:1], trace)

        scalar_results, scalar_elapsed = _timed(
            _scalar_pass, simulator, space, points, trace
        )
        batch_results, batch_elapsed = _timed(
            _batch_pass, simulator, space, points, trace
        )

        # The hard equivalence contract, per design: exact, no tolerances.
        for got, want in zip(batch_results, scalar_results):
            assert got.cycles == want.cycles
            assert got.counts.as_dict() == want.counts.as_dict()
            assert float(got.watts) == float(want.watts)

        scalar_sps = BATCH / scalar_elapsed if scalar_elapsed > 0 else float("inf")
        batch_sps = BATCH / batch_elapsed if batch_elapsed > 0 else float("inf")
        ratio = scalar_elapsed / batch_elapsed if batch_elapsed > 0 else float("inf")
        ratios.append(ratio)
        record["benchmarks"][benchmark] = {
            "scalar_seconds": scalar_elapsed,
            "batch_seconds": batch_elapsed,
            "scalar_sims_per_second": scalar_sps,
            "batch_sims_per_second": batch_sps,
            "speedup": ratio,
        }

    record["mean_speedup"] = float(np.mean(ratios))
    record["min_speedup"] = float(np.min(ratios))
    RESULT_PATH.write_text(json.dumps(record, indent=2) + "\n")
    print()
    for benchmark, row in record["benchmarks"].items():
        print(
            f"{benchmark:>6s}: scalar {row['scalar_sims_per_second']:>7,.0f} sims/s"
            f"  batch {row['batch_sims_per_second']:>7,.0f} sims/s"
            f"  speedup {row['speedup']:.1f}x"
        )
    print(f"wrote {RESULT_PATH.name} (mean speedup {record['mean_speedup']:.1f}x)")
    assert record["mean_speedup"] >= SPEEDUP_FLOOR
