"""Figure 4 — error distributions on the pareto frontier.

Regenerates the artifact's rows/series (printed) and times the study code
behind it; the campaign and model fit are session-shared and cached.
"""


def test_f4(run_paper_experiment):
    result = run_paper_experiment("F4")
    assert result.id == "F4"
