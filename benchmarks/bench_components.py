"""Component microbenchmarks.

The paper's computational-efficiency claim (Section 1, footnote 1: 800
predictions in 15 seconds on a 1.8 GHz Pentium M) rests on the relative
costs of simulation versus regression prediction.  These benches measure
our versions of both, plus the other hot substrate paths.
"""

import numpy as np
import pytest

from repro.cluster import kmeans
from repro.designspace import sample_uar
from repro.regression import rcs_basis
from repro.simulator import Simulator, baseline_config
from repro.workloads import generate_trace, get_profile


@pytest.fixture(scope="module")
def trace():
    return generate_trace(get_profile("gzip"), 4000, seed=1)


def test_simulation_throughput(benchmark, trace):
    """Cycle-level simulation: the expensive path regression replaces."""
    simulator = Simulator()
    result = benchmark(simulator.simulate, trace, baseline_config())
    assert result.bips > 0


def test_prediction_throughput(benchmark, ctx):
    """Thousands of regression predictions per second (the paper's pitch)."""
    points = sample_uar(ctx.exploration_space, 2000, seed=9)

    def predict():
        return ctx.predict_points("gzip", points)

    table = benchmark(predict)
    assert len(table) == 2000


def test_trace_generation(benchmark):
    """Synthetic trace synthesis (one-time per benchmark per session)."""
    profile = get_profile("mcf")

    def generate():
        return generate_trace(profile, 8000, seed=2)

    trace = benchmark(generate)
    assert len(trace) == 8000


def test_spline_basis(benchmark):
    """Restricted cubic spline basis expansion over a large column."""
    x = np.random.default_rng(0).uniform(0, 30, 100_000)
    knots = np.array([12.0, 18.0, 24.0, 30.0])
    basis = benchmark(rcs_basis, x, knots)
    assert basis.shape == (100_000, 3)


def test_kmeans_clustering(benchmark):
    """K-means over architecture vectors (Section 6's workhorse)."""
    rng = np.random.default_rng(3)
    points = rng.random((200, 7))
    result = benchmark(kmeans, points, 4, seed=0, restarts=10)
    assert result.k == 4


def test_model_fit(benchmark, ctx):
    """One OLS fit of the paper's performance model."""
    from repro.regression import fit_ols, performance_spec

    data = ctx.campaign.dataset("gzip", "train").columns()
    model = benchmark(fit_ols, performance_spec(), data)
    assert model.r_squared > 0.5
