"""X12 — zero-training mechanistic model vs trained regression.

Regenerates the artifact's rows/series (printed) and times the study code
behind it; the campaign and model fit are session-shared and cached.
"""


def test_x12(run_paper_experiment):
    result = run_paper_experiment("X12")
    assert result.id == "X12"
