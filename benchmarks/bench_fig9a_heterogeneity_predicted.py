"""Figure 9a — predicted efficiency gains vs cluster count.

Regenerates the artifact's rows/series (printed) and times the study code
behind it; the campaign and model fit are session-shared and cached.
"""


def test_f9a(run_paper_experiment):
    result = run_paper_experiment("F9a")
    assert result.id == "F9a"
