"""Figure 7 — decomposed performance and power validation.

Regenerates the artifact's rows/series (printed) and times the study code
behind it; the campaign and model fit are session-shared and cached.
"""


def test_f7(run_paper_experiment):
    result = run_paper_experiment("F7")
    assert result.id == "F7"
