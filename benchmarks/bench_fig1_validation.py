"""Figure 1 — error boxplots for 100 random validation designs.

Regenerates the artifact's rows/series (printed) and times the study code
behind it; the campaign and model fit are session-shared and cached.
"""


def test_f1(run_paper_experiment):
    result = run_paper_experiment("F1")
    assert result.id == "F1"
