"""Table 1 — the design space definition.

Regenerates the artifact's rows/series (printed) and times the study code
behind it; the campaign and model fit are session-shared and cached.
"""


def test_t1(run_paper_experiment):
    result = run_paper_experiment("T1")
    assert result.id == "T1"
