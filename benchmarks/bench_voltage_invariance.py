"""X4 — bips^3/w voltage invariance (footnote 2).

Regenerates the artifact's rows/series (printed) and times the study code
behind it; the campaign and model fit are session-shared and cached.
"""


def test_x4(run_paper_experiment):
    result = run_paper_experiment("X4")
    assert result.id == "X4"
