"""X10 — optimal workload scheduling on a heterogeneous CMP.

Regenerates the artifact's rows/series (printed) and times the study code
behind it; the campaign and model fit are session-shared and cached.
"""


def test_x10(run_paper_experiment):
    result = run_paper_experiment("X10")
    assert result.id == "X10"
