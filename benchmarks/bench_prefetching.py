"""X8 — idealized next-line prefetching study.

Regenerates the artifact's rows/series (printed) and times the study code
behind it; the campaign and model fit are session-shared and cached.
"""


def test_x8(run_paper_experiment):
    result = run_paper_experiment("X8")
    assert result.id == "X8"
