"""X6 — regression vs neural-network comparator (Ipek et al.).

Regenerates the artifact's rows/series (printed) and times the study code
behind it; the campaign and model fit are session-shared and cached.
"""


def test_x6(run_paper_experiment):
    result = run_paper_experiment("X6")
    assert result.id == "X6"
