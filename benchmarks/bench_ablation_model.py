"""X1 — model-form ablation (splines/interactions/linear).

Regenerates the artifact's rows/series (printed) and times the study code
behind it; the campaign and model fit are session-shared and cached.
"""


def test_x1(run_paper_experiment):
    result = run_paper_experiment("X1")
    assert result.id == "X1"
