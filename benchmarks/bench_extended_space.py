"""X7 — future-work space: associativity + issue discipline.

Regenerates the artifact's rows/series (printed) and times the study code
behind it; the campaign and model fit are session-shared and cached.
"""


def test_x7(run_paper_experiment):
    result = run_paper_experiment("X7")
    assert result.id == "X7"
