"""Figure 3 — modeled vs simulated pareto optima.

Regenerates the artifact's rows/series (printed) and times the study code
behind it; the campaign and model fit are session-shared and cached.
"""


def test_f3(run_paper_experiment):
    result = run_paper_experiment("F3")
    assert result.id == "F3"
