"""Figure 5a — original line plot vs enhanced boxplots per depth.

Regenerates the artifact's rows/series (printed) and times the study code
behind it; the campaign and model fit are session-shared and cached.
"""


def test_f5a(run_paper_experiment):
    result = run_paper_experiment("F5a")
    assert result.id == "F5a"
