"""Statistical model diagnostics workflow.

The paper's models were *derived*, not just fit: variable clustering,
correlation analysis, significance testing and residual analysis shaped
the final specification (Section 3, citing Lee & Brooks ASPLOS'06).  This
example replays that workflow on a fresh campaign:

1. variable clustering over the predictors (redundancy check);
2. response-predictor association (who deserves 4 knots?);
3. fit + coefficient significance and the interaction block's F-test;
4. residual analysis (unmodeled structure check);
5. cross-validated comparison of candidate model forms.

Run:  python examples/model_diagnostics.py
"""

from repro.harness import get_scale, render_table, run_campaign
from repro.regression import (
    ModelSpec,
    coefficient_tests,
    cross_validate,
    fit_ols,
    linear_terms,
    main_effects_only_terms,
    nested_f_test,
    performance_spec,
    residual_analysis,
    spearman,
    variable_clustering,
)
from repro.simulator import Simulator


def main() -> None:
    scale = get_scale("ci").with_overrides(name="diagnostics", n_train=140, seed=23)
    campaign = run_campaign(Simulator(), scale=scale, benchmarks=["gcc"])
    data = campaign.dataset("gcc", "train").columns()
    predictors = [n for n in data if n not in ("bips", "watts")]

    print("=== 1. variable clustering (squared Spearman, threshold 0.3) ===")
    clusters = variable_clustering(data, predictors, threshold=0.3)
    for cluster in clusters:
        members = ", ".join(cluster.members)
        print(f"  [{members}] (similarity {cluster.similarity:.2f})")
    print("  (UAR sampling makes the design parameters independent, so each"
          "\n   predictor should stand alone — shared clusters would flag"
          "\n   sampling bias)")

    print("\n=== 2. response association: |spearman(bips, x)| ===")
    rows = sorted(
        ((name, abs(spearman(data["bips"], data[name]))) for name in predictors),
        key=lambda pair: -pair[1],
    )
    print(render_table(["predictor", "|rho|"], [[n, f"{r:.3f}"] for n, r in rows]))
    print("  strong predictors earn 4 spline knots, weak ones 3 (Sec 3.3)")

    print("\n=== 3. fit + significance ===")
    spec = performance_spec()
    model = fit_ols(spec, data)
    print(f"  R^2 = {model.r_squared:.4f}, adjusted = {model.adjusted_r_squared:.4f}")
    significant = [
        t for t in coefficient_tests(model) if t.significant() and t.name != "(intercept)"
    ]
    print(f"  {len(significant)}/{model.n_parameters - 1} slope terms significant at 5%:")
    for t in sorted(significant, key=lambda t: t.p_value)[:8]:
        print(f"    {t.name:18s} beta={t.estimate:+.4f}  t={t.t_statistic:+.1f}  p={t.p_value:.2g}")

    reduced = fit_ols(spec.with_terms(main_effects_only_terms(), name="no-ix"), data)
    f = nested_f_test(model, reduced)
    print(f"  interaction block F-test: F={f.statistic:.2f} "
          f"(df {f.df_numerator}/{f.df_denominator}), p={f.p_value:.3g}")

    print("\n=== 4. residual analysis ===")
    residuals = residual_analysis(model, data)
    print(f"  mean={residuals.mean:+.2e}, sd={residuals.std:.4f}, "
          f"max |standardized|={residuals.max_abs_standardized:.2f}")
    drift = max(residuals.per_predictor_correlation.items(), key=lambda kv: abs(kv[1]))
    print(f"  largest residual-predictor correlation: {drift[0]} ({drift[1]:+.3f})")

    print("\n=== 5. cross-validated model comparison (5-fold) ===")
    candidates = {
        "paper (splines+interactions)": spec,
        "splines only": spec.with_terms(main_effects_only_terms()),
        "linear only": ModelSpec("bips", linear_terms(), transform=spec.transform),
    }
    rows = []
    for label, candidate in candidates.items():
        result = cross_validate(candidate, data, folds=5, seed=1)
        rows.append([label, f"{result.median_percent:.2f}%"])
    print(render_table(["model form", "CV median error"], rows))


if __name__ == "__main__":
    main()
