"""Distributed smoke: work-stealing must survive a SIGKILLed worker bitwise.

Exercises the journal-coordinated work-stealing backend end-to-end:

1. run a clean serial campaign as the reference;
2. rerun distributed with 3 spawned workers coordinating through a
   shared run directory; a monitor thread SIGKILLs one worker once the
   run is underway, survivors steal its leased work, and the final
   datasets must be bitwise-identical to the serial reference;
3. rerun with a deterministic zombie fault (a worker keeps writing
   after its lease expired and was stolen) and assert the fencing-token
   merge discards the stale record: the duplicate is visible in the run
   report and the results are again bitwise-identical.

Run:  python examples/distributed_smoke.py

Exits non-zero if any distributed run diverges from the serial
reference — CI uses this as the distributed-executor acceptance gate.
"""

import os
import signal
import tempfile
import threading
import time
from pathlib import Path

import numpy as np

from repro.harness import (
    DistributedConfig,
    Fault,
    FaultPlan,
    ResilienceConfig,
    get_scale,
    run_campaign,
    workers_status,
)
from repro.simulator import Simulator

KILL_TIMEOUT_S = 120.0


def assert_campaigns_equal(reference, candidate, benchmarks, label):
    for bench in benchmarks:
        for split in ("train", "validation"):
            ours = reference.dataset(bench, split).metrics
            theirs = candidate.dataset(bench, split).metrics
            for metric in ("bips", "watts"):
                if not np.array_equal(ours[metric], theirs[metric]):
                    raise SystemExit(
                        f"FAIL [{label}]: {bench}/{split}/{metric} diverged"
                    )
    print(f"  OK [{label}]: bitwise-identical to the clean serial run")


def counter_total(report, prefix):
    return sum(
        value
        for name, value in report.metrics["counters"].items()
        if name.startswith(prefix)
    )


def kill_one_worker(run_dir: Path, killed: dict) -> None:
    """SIGKILL a worker while it holds a lease, leaving stealable work."""
    deadline = time.monotonic() + KILL_TIMEOUT_S
    while time.monotonic() < deadline:
        try:
            status = workers_status(run_dir)
        except Exception:
            time.sleep(0.05)
            continue
        alive = {
            w["worker"]: w for w in status["workers"] if w.get("alive")
        }
        # Strike a worker that currently owns a lease (it is mid-chunk,
        # so its claim must be stolen) while a survivor is still running.
        leased = [l for l in status["leases"] if l["worker"] in alive]
        if leased and len(alive) >= 2:
            victim = alive[leased[0]["worker"]]
            try:
                os.kill(victim["pid"], signal.SIGKILL)
            except ProcessLookupError:
                continue
            killed["worker"] = victim["worker"]
            killed["pid"] = victim["pid"]
            return
        total = status["tasks"]["total"]
        if total is not None and status["tasks"]["done"] >= total:
            return
        time.sleep(0.02)


def main() -> None:
    scale = get_scale("ci").with_overrides(
        name="distributed-smoke", trace_length=600, n_train=8, n_validation=4
    )
    benchmarks = ["gzip", "mcf"]

    print(f"Reference: clean serial campaign ({scale.n_train}+"
          f"{scale.n_validation} designs x {len(benchmarks)} benchmarks)")
    reference = run_campaign(
        Simulator(), scale=scale, benchmarks=benchmarks
    )

    # -- 3 workers, one SIGKILLed mid-run ------------------------------------
    print("Distributed: 3 workers, SIGKILL one mid-run, survivors steal")
    with tempfile.TemporaryDirectory() as tmp:
        run_dir = Path(tmp) / "kill-run"
        killed = {}
        monitor = threading.Thread(
            target=kill_one_worker, args=(run_dir, killed), daemon=True
        )
        monitor.start()
        survived = run_campaign(
            Simulator(),
            scale=scale,
            benchmarks=benchmarks,
            resilience=ResilienceConfig(
                backend="distributed",
                distributed=DistributedConfig(
                    run_dir=run_dir,
                    spawn=3,
                    lease_ttl=2.0,
                    heartbeat_interval=0.25,
                ),
            ),
        )
        monitor.join(timeout=5.0)
    report = survived.run_report
    if not killed:
        raise SystemExit(
            "FAIL: run finished before the monitor could SIGKILL a worker"
        )
    print(f"  killed worker {killed['worker']} (pid {killed['pid']})")
    stolen = counter_total(report, "distributed.chunks_stolen")
    expired = counter_total(report, "distributed.chunks_expired")
    print(f"  execution: {report.summary()}")
    print(f"  lease protocol: {stolen} stolen, {expired} expired")
    if report.failure is not None:
        raise SystemExit("FAIL: distributed run reported a failure")
    if stolen + expired == 0:
        raise SystemExit(
            "FAIL: killed worker's leased chunk was never stolen"
        )
    assert_campaigns_equal(reference, survived, benchmarks, "SIGKILL + steal")

    # -- deterministic zombie: stale writer fenced off by the token ----------
    print("Distributed: zombie writer fenced off after lease expiry")
    with tempfile.TemporaryDirectory() as tmp:
        fenced = run_campaign(
            Simulator(),
            scale=scale,
            benchmarks=benchmarks,
            resilience=ResilienceConfig(
                backend="distributed",
                distributed=DistributedConfig(
                    run_dir=Path(tmp) / "zombie-run",
                    spawn=2,
                    lease_ttl=1.0,
                    heartbeat_interval=0.2,
                ),
                faults=FaultPlan([Fault(chunk=1, kind="zombie")]),
            ),
        )
    report = fenced.run_report
    duplicates = [
        event for event in report.events
        if event["name"] == "distributed.duplicate"
    ]
    print(f"  execution: {report.summary()}")
    if not duplicates:
        raise SystemExit("FAIL: zombie write left no duplicate to merge out")
    attrs = duplicates[0]["attrs"]
    print(f"  duplicate on chunk {attrs['chunk']} resolved at "
          f"token {attrs['winner_token']}")
    if attrs["winner_token"] < 2:
        raise SystemExit("FAIL: winning record carries an unfenced token")
    assert_campaigns_equal(reference, fenced, benchmarks, "zombie + fencing")

    print()
    print("distributed smoke passed: kill and zombie runs bitwise-identical")


if __name__ == "__main__":
    main()
