"""Extending the suite with a custom workload.

The framework is not tied to the paper's nine benchmarks: any
:class:`~repro.workloads.WorkloadProfile` can be simulated, modeled and
optimized.  This example defines a synthetic "streamdb" workload (a
scan-heavy analytics kernel: streaming data, tiny code, modest ILP),
finds its efficiency-optimal core with the regression workflow, and
compares it against two suite benchmarks.

Run:  python examples/custom_workload.py
"""

from repro.designspace import DesignEncoder, exploration_space, sample_uar, sampling_space
from repro.harness import render_table
from repro.regression import fit_ols, performance_spec, power_spec
from repro.simulator import Simulator
from repro.workloads import WorkloadProfile, get_profile

STREAMDB = WorkloadProfile(
    name="streamdb",
    description="scan-heavy analytics kernel: streams tables, tiny code",
    mix={"int": 0.38, "int_mul": 0.02, "load": 0.34, "store": 0.08,
         "branch": 0.18},
    dep_distance_mean=6.0,
    second_operand_rate=0.45,
    load_chain_rate=0.05,
    branch_bias=0.95,          # loop branches dominate
    unpredictable_rate=0.06,   # predicate filters are mostly biased
    static_branches=96,
    # streaming reuse: strong block-level locality, then nothing until the
    # next pass over a table far larger than any cache (the long stratum
    # starts beyond the largest L2, so cache size barely matters)
    data_reuse_strata=((0.60, 24), (0.06, 512), (0.02, 40000), (0.32, 800000)),
    instr_reuse_strata=((0.99, 16), (0.01, 60)),
    ifetch_run_mean=13.0,
    data_footprint_blocks=262144,  # ~32MB of tables
    data_zipf=0.15,
    sequential_run_mean=32.0,
    instr_footprint_blocks=48,
    loop_length_mean=6.0,
    loop_iterations_mean=200.0,
    ref_instructions=2.4e9,
)


def fit_models_for(profile, simulator, space, points, trace_length=2000, seed=21):
    trace = simulator.trace_for(profile, trace_length, seed=seed)
    results = [simulator.simulate_point(space, p, trace) for p in points]
    encoder = DesignEncoder(space)
    matrix = encoder.encode(points)
    data = {name: matrix[:, j] for j, name in enumerate(encoder.feature_names)}
    import numpy as np

    data["bips"] = np.array([r.bips for r in results])
    data["watts"] = np.array([r.watts for r in results])
    return fit_ols(performance_spec(), data), fit_ols(power_spec(), data)


def main() -> None:
    simulator = Simulator()
    space = sampling_space()
    explore = exploration_space()
    train_points = sample_uar(space, 120, seed=21)

    rows = []
    for profile in (STREAMDB, get_profile("mcf"), get_profile("gzip")):
        perf_model, power_model = fit_models_for(
            profile, simulator, space, train_points
        )
        # exhaustive-ish prediction over a slice of the exploration space
        candidates = sample_uar(explore, 4000, seed=22)
        encoder = DesignEncoder(explore)
        matrix = encoder.encode(candidates)
        columns = {n: matrix[:, j] for j, n in enumerate(encoder.feature_names)}
        bips = perf_model.predict(columns)
        watts = power_model.predict(columns)
        efficiency = bips**3 / watts
        best = int(efficiency.argmax())
        point = candidates[best]
        rows.append([
            profile.name,
            int(point["depth"]),
            int(point["width"]),
            int(point["gpr_phys"]),
            int(point["dl1_kb"]),
            point["l2_mb"],
            f"{bips[best]:.2f}",
            f"{watts[best]:.1f}",
            f"{perf_model.r_squared:.3f}",
        ])

    print(render_table(
        ["workload", "depth", "width", "regs", "d$KB", "L2MB",
         "bips", "watts", "perf R^2"],
        rows,
        title="Regression-predicted bips^3/w optimal cores (custom vs suite)",
    ))
    print(
        "\nstreamdb behaves like a streaming code: caches beyond the hot "
        "blocks buy little, so its optimum carries small arrays — compare "
        "mcf, whose pointer-chasing working set rewards the largest L2."
    )


if __name__ == "__main__":
    main()
