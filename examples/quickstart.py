"""Quickstart: sample, simulate, fit, predict.

Walks the paper's core loop end-to-end on a reduced scale:

1. define the Table 1 design space (375,000 points);
2. sample designs uniformly at random and simulate them on one benchmark;
3. fit the paper's non-linear regression models (sqrt/log responses,
   restricted cubic splines, domain interactions);
4. validate on held-out designs and predict a sweep the simulator never ran.

Run:  python examples/quickstart.py
"""

from repro.designspace import exploration_space, sampling_space
from repro.harness import get_scale, render_table, run_campaign
from repro.regression import error_table, validate_model
from repro.harness.campaign import fit_campaign_models
from repro.simulator import Simulator, baseline_point


def main() -> None:
    space = sampling_space()
    print(f"Design space: {space!r}")
    print(f"Exploration subspace: {len(exploration_space()):,} points")
    print()

    # -- sample + simulate (the expensive phase the models amortize) --------
    scale = get_scale("ci").with_overrides(name="quickstart", seed=17)
    simulator = Simulator()
    print(
        f"Sampling {scale.n_train} training + {scale.n_validation} validation "
        f"designs UAR; simulating each on gzip and mcf..."
    )
    campaign = run_campaign(simulator, scale=scale, benchmarks=["gzip", "mcf"])

    # -- fit the paper's models ----------------------------------------------
    models = fit_campaign_models(campaign)
    for benchmark in campaign.benchmarks:
        perf = models[benchmark]["bips"]
        power = models[benchmark]["watts"]
        print(
            f"{benchmark:5s}: perf model R^2={perf.r_squared:.3f}, "
            f"power model R^2={power.r_squared:.3f} "
            f"({perf.n_parameters} parameters, {perf.n_observations} observations)"
        )
    print()

    # -- validate on held-out designs (Figure 1's protocol) ------------------
    summaries = []
    for benchmark in campaign.benchmarks:
        data = campaign.dataset(benchmark, "validation").columns()
        summaries.append(validate_model(models[benchmark]["bips"], data, benchmark))
    print("Median |obs-pred|/pred performance error (%):", {
        k: round(v, 1) for k, v in error_table(summaries).items()
    })
    print()

    # -- predict a sweep the simulator never ran -----------------------------
    explore = exploration_space()
    base = baseline_point(explore)
    sweep = explore.sweep("l2_mb", base)
    from repro.designspace import DesignEncoder

    encoder = DesignEncoder(explore)
    matrix = encoder.encode(sweep)
    columns = {n: matrix[:, j] for j, n in enumerate(encoder.feature_names)}
    rows = []
    for benchmark in campaign.benchmarks:
        bips = models[benchmark]["bips"].predict(columns)
        watts = models[benchmark]["watts"].predict(columns)
        for point, b, w in zip(sweep, bips, watts):
            rows.append([benchmark, point["l2_mb"], b, w, b**3 / w])
    print(render_table(
        ["bench", "L2 (MB)", "pred bips", "pred watts", "bips^3/w"],
        rows,
        title="Predicted L2 sweep at the POWER4-like baseline (no simulation)",
    ))


if __name__ == "__main__":
    main()
