"""Multiprocessor heterogeneity study (the paper's Section 6).

Finds each benchmark's bips^3/w-optimal core, clusters the nine optima
with K-means into K compromise architectures, and quantifies the
efficiency gain of increasing core heterogeneity against the homogeneous
baseline — including the paper's observation of diminishing returns
beyond roughly four core types.

Run:  python examples/heterogeneity_study.py
"""

import os

from repro.harness import get_scale, render_table
from repro.studies import StudyContext, heterogeneity


def main() -> None:
    scale = get_scale(os.environ.get("REPRO_SCALE", "ci"))
    ctx = StudyContext(scale=scale)

    print("=== per-benchmark bips^3/w optimal cores (Table 2) ===")
    optima = heterogeneity.benchmark_optima(ctx)
    rows = [
        [
            name,
            int(row.point["depth"]),
            int(row.point["width"]),
            int(row.point["gpr_phys"]),
            int(row.point["dl1_kb"]),
            row.point["l2_mb"],
            f"{row.predicted_delay:.2f}",
            f"{row.predicted_watts:.1f}",
        ]
        for name, row in optima.items()
    ]
    print(render_table(
        ["bench", "depth", "width", "regs", "d$KB", "L2MB", "delay", "watts"], rows
    ))

    print("\n=== K=4 compromise architectures (Table 4) ===")
    clustering = heterogeneity.table4(ctx, k=4)
    rows = [
        [
            i + 1,
            int(c.point["depth"]),
            int(c.point["width"]),
            int(c.point["gpr_phys"]),
            int(c.point["dl1_kb"]),
            c.point["l2_mb"],
            f"{c.mean_delay:.2f}",
            f"{c.mean_power:.1f}",
            ",".join(c.benchmarks),
        ]
        for i, c in enumerate(clustering.clusters)
    ]
    print(render_table(
        ["cluster", "depth", "width", "regs", "d$KB", "L2MB",
         "avg delay", "avg W", "benchmarks"],
        rows,
    ))

    print("\n=== efficiency gain vs degree of heterogeneity (Figure 9a) ===")
    sweep = heterogeneity.k_sweep(ctx)
    print("K:       " + "  ".join(f"{k:>5d}" for k in sweep.cluster_counts))
    print("average: " + "  ".join(f"{g:5.2f}" for g in sweep.average))
    upper_bound = sweep.average[-1]
    four_core = sweep.average[min(4, len(sweep.average) - 1)]
    print(
        f"\nfour core types reach {four_core / upper_bound * 100:.0f}% of the "
        f"theoretical full-heterogeneity bound ({upper_bound:.2f}x over baseline)"
    )

    print("\nper-benchmark gains at K=1 (homogeneous) vs K=4:")
    for name, gains in sweep.per_benchmark.items():
        k4 = gains[min(4, len(gains) - 1)]
        print(f"  {name:7s}: K=1 {gains[1]:.2f}x   K=4 {k4:.2f}x   K=max {gains[-1]:.2f}x")


if __name__ == "__main__":
    main()
