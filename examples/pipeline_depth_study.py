"""Pipeline depth study (the paper's Section 5).

Contrasts the *original* constrained analysis (all non-depth parameters
pinned at the POWER4-like baseline) with the *enhanced* analysis that
varies every parameter simultaneously via the regression models — the
paper's demonstration that constrained sensitivity studies may not
generalize.

Run:  python examples/pipeline_depth_study.py
"""

import os

from repro.harness import get_scale, render_boxplot, render_table
from repro.studies import StudyContext, depth


def main() -> None:
    scale = get_scale(os.environ.get("REPRO_SCALE", "ci"))
    ctx = StudyContext(scale=scale)

    print("=== Figure 5a: suite-average efficiency vs pipeline depth ===")
    summary = depth.suite_depth_summary(ctx)
    print("original (constrained) analysis, relative to its optimum:")
    for d, value in zip(summary.depths, summary.original_relative):
        bar = "#" * int(round(value * 40))
        print(f"  {int(d):>2}FO4 {value:5.2f} {bar}")
    print("\nenhanced analysis, per-depth distributions over the whole space:")
    for d in summary.depths:
        stats = summary.distributions[d]
        print(render_boxplot(f"{int(d)}FO4", stats)
              + f"  bound={summary.bound_relative[d]:.2f}"
              + f"  >line={summary.exceed_baseline_fraction[d] * 100:.0f}%")

    best_original = summary.depths[
        max(range(len(summary.depths)), key=lambda i: summary.original_relative[i])
    ]
    best_bound = max(summary.bound_relative, key=summary.bound_relative.get)
    print(f"\noriginal-analysis optimal depth: {int(best_original)} FO4")
    print(f"bound-architecture optimal depth: {int(best_bound)} FO4")
    print(f"max efficiency over constrained optimum: "
          f"{max(summary.bound_relative.values()):.2f}x")

    print("\n=== Figure 5b: d-L1 sizes among each depth's top 5% designs ===")
    distribution = depth.top_percentile_cache_distribution(ctx)
    sizes = sorted(next(iter(distribution.values())))
    rows = [
        [int(d)] + [f"{distribution[d][s] * 100:.0f}%" for s in sizes]
        for d in distribution
    ]
    print(render_table(["FO4"] + [f"{int(s)}KB" for s in sizes], rows))

    print("\n=== Figure 6: validation against simulation ===")
    validation = depth.validate_depth_study(
        ctx, benchmarks=list(ctx.benchmarks)[: scale.depth_validations]
    )
    rows = [
        [int(d), f"{po:.2f}", f"{so:.2f}", f"{pe:.2f}", f"{se:.2f}"]
        for d, po, so, pe, se in zip(
            validation.depths,
            validation.predicted_original,
            validation.simulated_original,
            validation.predicted_enhanced,
            validation.simulated_enhanced,
        )
    ]
    print(render_table(
        ["FO4", "pred orig", "sim orig", "pred enh", "sim enh"],
        rows,
        title="relative bips^3/w, predicted vs simulated",
    ))


if __name__ == "__main__":
    main()
