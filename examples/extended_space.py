"""Exploring the extended design space (the paper's future work).

Section 8 names two parameters the authors intended to add: cache
associativity and in-order execution.  This example trains the extended
regression models over the 9-parameter space and asks two questions the
original evaluation could not:

1. how much bips^3/w does out-of-order issue buy at each machine width?
2. when is higher d-L1 associativity worth its access-energy cost?

Run:  python examples/extended_space.py
"""

import numpy as np

from repro.designspace import DesignEncoder, extended_space, sample_uar
from repro.harness import render_table
from repro.regression import (
    extended_performance_spec,
    extended_power_spec,
    fit_ols,
)
from repro.simulator import Simulator
from repro.workloads import get_profile


def main() -> None:
    space = extended_space()
    print(f"extended space: {len(space):,} designs "
          f"({len(space.parameters)} parameters)\n")

    simulator = Simulator()
    points = sample_uar(space, 180, seed=31)
    encoder = DesignEncoder(space)
    matrix = encoder.encode(points)

    models = {}
    for bench in ("gzip", "mesa"):
        trace = simulator.trace_for(get_profile(bench), 2500, seed=31)
        results = [simulator.simulate_point(space, p, trace) for p in points]
        data = {n: matrix[:, j] for j, n in enumerate(encoder.feature_names)}
        data["bips"] = np.array([r.bips for r in results])
        data["watts"] = np.array([r.watts for r in results])
        models[bench] = (
            fit_ols(extended_performance_spec(), data),
            fit_ols(extended_power_spec(), data),
        )
        print(f"{bench}: perf R^2={models[bench][0].r_squared:.3f}, "
              f"power R^2={models[bench][1].r_squared:.3f}")

    def predict(bench, **overrides):
        base = space.snap(
            depth=18, width=4, gpr_phys=80, br_resv=12, il1_kb=64,
            dl1_kb=32, l2_mb=2.0, dl1_assoc=2, in_order=0,
        )
        point = base.replace(**overrides)
        m = encoder.encode([point])
        columns = {n: m[:, j] for j, n in enumerate(encoder.feature_names)}
        perf_model, power_model = models[bench]
        bips = float(perf_model.predict(columns)[0])
        watts = float(power_model.predict(columns)[0])
        return bips, watts, bips**3 / watts

    print("\n=== value of out-of-order issue, by width (predicted) ===")
    rows = []
    for bench in models:
        for width in (2, 4, 8):
            ooo = predict(bench, width=width, in_order=0)
            ino = predict(bench, width=width, in_order=1)
            rows.append([
                bench, width,
                f"{ooo[0]:.2f}", f"{ino[0]:.2f}",
                f"{ooo[2] / ino[2]:.2f}x",
            ])
    print(render_table(
        ["bench", "width", "OoO bips", "in-order bips", "OoO bips^3/w gain"],
        rows,
    ))

    print("\n=== d-L1 associativity sweep at 32KB (predicted) ===")
    rows = []
    for bench in models:
        for assoc in (1, 2, 4, 8):
            bips, watts, eff = predict(bench, dl1_assoc=assoc)
            rows.append([bench, assoc, f"{bips:.2f}", f"{watts:.1f}", f"{eff:.4f}"])
    print(render_table(
        ["bench", "ways", "bips", "watts", "bips^3/w"], rows
    ))


if __name__ == "__main__":
    main()
