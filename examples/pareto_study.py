"""Pareto frontier study (the paper's Section 4) on two benchmarks.

Characterizes the exploration space exhaustively with the regression
models, extracts the power-delay pareto frontier by delay discretization,
locates the bips^3/w optimum, and validates a handful of frontier designs
against simulation.

Run:  python examples/pareto_study.py            (ci scale)
      REPRO_SCALE=default python examples/pareto_study.py
"""

import os

from repro.harness import ascii_scatter, get_scale, render_table
from repro.studies import StudyContext, pareto


def main() -> None:
    scale = get_scale(os.environ.get("REPRO_SCALE", "ci"))
    ctx = StudyContext(scale=scale)
    print(f"scale={scale.name}: exploring "
          f"{scale.exploration_limit or len(ctx.exploration_space):,} designs per benchmark\n")

    for benchmark in ("ammp", "mcf"):
        table = pareto.characterize(ctx, benchmark)
        print(f"=== {benchmark}: design space characterization (Figure 2) ===")
        print(
            f"delay {table.delay.min():.2f}..{table.delay.max():.2f}s, "
            f"power {table.watts.min():.1f}..{table.watts.max():.1f}W"
        )
        print(ascii_scatter(
            table.delay.tolist(), table.watts.tolist(),
            width=60, height=14, x_label="delay (s)", y_label="power (W)",
        ))

        front = pareto.frontier(ctx, benchmark, bins=40)
        print(f"\npareto frontier: {len(front)} designs "
              f"(delay {front.delay[0]:.2f}s/{front.power[0]:.1f}W fastest, "
              f"{front.delay[-1]:.2f}s/{front.power[-1]:.1f}W cheapest)")

        optimum = pareto.efficiency_optimum(ctx, benchmark, validate=True)
        p = optimum.point
        print(
            f"bips^3/w optimum: depth={p['depth']} width={p['width']} "
            f"gpr={p['gpr_phys']} i$={p['il1_kb']}KB d$={p['dl1_kb']}KB "
            f"L2={p['l2_mb']}MB -> modeled {optimum.predicted_delay:.2f}s/"
            f"{optimum.predicted_watts:.1f}W "
            f"(delay err {optimum.delay_error * 100:+.1f}%, "
            f"power err {optimum.power_error * 100:+.1f}%)"
        )

        validation = pareto.validate_frontier(ctx, benchmark)
        rows = [
            [f"{md:.2f}", f"{sd:.2f}", f"{mp:.1f}", f"{sp:.1f}"]
            for md, sd, mp, sp in zip(
                validation.model_delay, validation.simulated_delay,
                validation.model_power, validation.simulated_power,
            )
        ]
        print(render_table(
            ["model delay", "sim delay", "model W", "sim W"],
            rows,
            title="frontier validation (Figure 3)",
        ))
        print(
            f"frontier median errors: delay "
            f"{validation.delay_errors.median_percent:.1f}%, power "
            f"{validation.power_errors.median_percent:.1f}% (Figure 4)\n"
        )


if __name__ == "__main__":
    main()
