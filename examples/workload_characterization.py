"""Characterizing the benchmark suite.

Computes the program properties that explain *why* each benchmark's
optimal architecture lands where it does (Table 2's diversity): inherent
dataflow ILP, branch predictability, data cacheability and footprints —
plus conformance validation of each synthetic trace against its profile.

Run:  python examples/workload_characterization.py
"""

from repro.harness import render_table
from repro.workloads import (
    BENCHMARK_NAMES,
    characterize,
    generate_trace,
    get_profile,
    validate_trace,
)


def main() -> None:
    rows = []
    conforming = 0
    for name in BENCHMARK_NAMES:
        profile = get_profile(name)
        trace = generate_trace(profile, 12000, seed=4)
        character = characterize(trace)
        report = validate_trace(trace, profile)
        conforming += report.passed
        rows.append([
            name,
            f"{character.ilp_infinite:.1f}",
            f"{character.ilp_window_64:.1f}",
            f"{character.branch_predictability * 100:.1f}%",
            f"{character.data_miss_curve[256] * 100:.1f}%",
            f"{character.data_miss_curve[16384] * 100:.1f}%",
            f"{character.mix['load'] + character.mix['store']:.2f}",
            "ok" if report.passed else "FAIL",
        ])
    print(render_table(
        ["bench", "ILP (inf)", "ILP (w=64)", "bpred", "miss@32KB",
         "miss@2MB", "mem frac", "conform"],
        rows,
        title="Benchmark suite characterization (12k-instruction traces)",
    ))
    print(f"\n{conforming}/{len(BENCHMARK_NAMES)} traces conform to their profiles")
    print(
        "\nReading the table against Table 2 of the paper/EXPERIMENTS.md:\n"
        "- high-ILP, predictable codes (mesa, ammp) support wide machines;\n"
        "- high miss@2MB (mcf, applu, equake) marks the memory-bound codes\n"
        "  whose optima are shallow (frequency buys nothing at the wall) —\n"
        "  mcf's falls with L2 size (big-cache optimum) while applu's does\n"
        "  not (minimum-cache optimum);\n"
        "- branchy, low-ILP codes (gcc, gzip) want narrow machines where\n"
        "  mispredict flushes are cheap."
    )


if __name__ == "__main__":
    main()
