"""Resilience smoke: fault-injected campaigns must match clean runs bitwise.

Exercises the fault-tolerant execution layer end-to-end:

1. run a clean serial campaign as the reference;
2. rerun in parallel with injected worker exceptions on two chunks and
   assert bitwise-identical bips/watts arrays;
3. kill a worker mid-campaign (a real ``os._exit`` in the child) so the
   run aborts, then resume from the on-disk journal and again assert
   bitwise-identical results;
4. sweep the exploration set with injected faults and compare streaming
   reducer results against a fault-free serial sweep.

Run:  python examples/resilience_smoke.py

Exits non-zero if any recovered run diverges from its clean reference —
CI uses this as the resilience acceptance gate.
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.harness import (
    ChunkFailure,
    CollectReducer,
    Fault,
    FaultPlan,
    ResilienceConfig,
    RetryPolicy,
    TopKReducer,
    get_scale,
    run_campaign,
)
from repro.designspace import exploration_space
from repro.harness.campaign import fit_campaign_models
from repro.harness.sweep import BlockPredictor, SpaceSweepSource, run_sweep
from repro.simulator import Simulator
from repro.workloads import get_profile


def assert_campaigns_equal(reference, candidate, benchmarks, label):
    for bench in benchmarks:
        for split in ("train", "validation"):
            ours = reference.dataset(bench, split).metrics
            theirs = candidate.dataset(bench, split).metrics
            for metric in ("bips", "watts"):
                if not np.array_equal(ours[metric], theirs[metric]):
                    raise SystemExit(
                        f"FAIL [{label}]: {bench}/{split}/{metric} diverged"
                    )
    print(f"  OK [{label}]: bitwise-identical to the clean serial run")


def main() -> None:
    scale = get_scale("ci").with_overrides(
        name="resilience-smoke", trace_length=600, n_train=8, n_validation=4
    )
    benchmarks = ["gzip", "mcf"]
    simulator = Simulator()

    print(f"Reference: clean serial campaign ({scale.n_train}+"
          f"{scale.n_validation} designs x {len(benchmarks)} benchmarks)")
    reference = run_campaign(simulator, scale=scale, benchmarks=benchmarks)

    # -- transient worker exceptions on two chunks ---------------------------
    print("Fault injection: transient worker exceptions on chunks 0 and 9")
    faulty = run_campaign(
        Simulator(),
        scale=scale,
        benchmarks=benchmarks,
        workers=2,
        resilience=ResilienceConfig(
            faults=FaultPlan(
                [
                    Fault(chunk=0, kind="transient", attempts=(1,)),
                    Fault(chunk=9, kind="transient", attempts=(1,)),
                ]
            )
        ),
    )
    print(f"  execution: {faulty.run_report.summary()}")
    if faulty.run_report.retried != 2:
        raise SystemExit("FAIL: expected exactly 2 retried chunks")
    assert_campaigns_equal(reference, faulty, benchmarks, "transient faults")

    # -- kill a worker mid-run, then resume from the journal -----------------
    print("Fault injection: worker killed mid-campaign, resume from journal")
    with tempfile.TemporaryDirectory() as tmp:
        journal = Path(tmp) / "campaign.journal.jsonl"
        try:
            run_campaign(
                Simulator(),
                scale=scale,
                benchmarks=benchmarks,
                workers=2,
                resilience=ResilienceConfig(
                    policy=RetryPolicy(max_attempts=1, max_pool_restarts=0),
                    journal_path=journal,
                    faults=FaultPlan(
                        [Fault(chunk=12, kind="kill", attempts=())]
                    ),
                ),
            )
            raise SystemExit("FAIL: killed campaign unexpectedly completed")
        except ChunkFailure as failure:
            print(f"  aborted as expected: {failure.report.summary()}")
        if not journal.exists():
            raise SystemExit("FAIL: no journal left behind by aborted run")

        resumed = run_campaign(
            Simulator(),
            scale=scale,
            benchmarks=benchmarks,
            workers=2,
            resilience=ResilienceConfig(journal_path=journal, resume=True),
        )
        print(f"  execution: {resumed.run_report.summary()}")
        if resumed.run_report.resumed == 0:
            raise SystemExit("FAIL: resume restored nothing from the journal")
    assert_campaigns_equal(reference, resumed, benchmarks, "kill + resume")

    # -- fault-injected sweep vs clean serial sweep --------------------------
    print("Fault injection: sweep with a transient and a corrupt chunk")
    # model fitting needs more observations than the 12-design campaign
    # above: run a slightly larger (still serial, still fast) one
    fit_scale = scale.with_overrides(
        name="resilience-smoke-fit", n_train=40, n_validation=5
    )
    fit_campaign = run_campaign(simulator, scale=fit_scale, benchmarks=["gzip"])
    models = fit_campaign_models(fit_campaign)["gzip"]
    predictor = BlockPredictor(
        benchmark="gzip",
        bips_model=models["bips"],
        watts_model=models["watts"],
        ref_instructions=get_profile("gzip").ref_instructions,
    )
    source = SpaceSweepSource(exploration_space())

    def reducers():
        return [
            CollectReducer(metrics=("bips", "watts")),
            TopKReducer(metric="efficiency", k=3),
        ]

    clean = run_sweep(predictor, source, reducers(), block_size=16384)
    faulted = run_sweep(
        predictor,
        source,
        reducers(),
        block_size=16384,
        workers=2,
        resilience=ResilienceConfig(
            faults=FaultPlan(
                [
                    Fault(chunk=1, kind="transient", attempts=(1,)),
                    Fault(chunk=3, kind="corrupt", attempts=(1,)),
                ]
            )
        ),
    )
    print(f"  execution: {faulted.run_report.summary()}")
    clean_cols, clean_best = clean.results
    fault_cols, fault_best = faulted.results
    for metric in ("bips", "watts"):
        if not np.array_equal(
            clean_cols.metric(metric), fault_cols.metric(metric)
        ):
            raise SystemExit(f"FAIL: sweep {metric} diverged under faults")
    if not np.array_equal(clean_best.indices, fault_best.indices):
        raise SystemExit("FAIL: sweep top-k diverged under faults")
    print("  OK [sweep faults]: reducer results identical to serial sweep")

    print()
    print("resilience smoke passed: all recovery paths bitwise-identical")


if __name__ == "__main__":
    main()
